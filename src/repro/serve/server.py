"""The simulation service: asyncio HTTP/JSON over ``execute_jobs``.

Architecture (one event loop, N worker tasks, jobs in threads)::

    client ──HTTP──▶ event loop ──▶ FairScheduler ──▶ worker task
                        │   ▲        (per-client FIFO,      │
                        │   │         round-robin,          ▼
                   dedup map│         bounded)      asyncio.to_thread
                   (in-flight +                             │
                    warm cache)                      execute_jobs(...)
                                                     └─ ResultCache

Every piece of job state (:class:`JobRecord`, the dedup map, the
scheduler) is mutated **only on the event-loop thread**; the only code
that runs elsewhere is the simulation itself, pushed into a thread via
``asyncio.to_thread`` so the loop keeps answering status requests
while simulations run. Because loop code between two ``await`` points
is atomic, submission's check-then-insert on the dedup map needs no
locks: identical concurrent submissions always coalesce onto one
record, and a warm :class:`ResultCache` answers without queueing at
all — a million identical requests cost one simulation.

Load shedding is all-or-nothing per submission: a batch whose *new*
jobs (after dedup and cache short-circuits) do not fit in the bounded
queue is refused with 429 ``{"error": "backpressure"}`` and no state
change, so a retrying client never half-submits a sweep.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import BackpressureError, ReproError, ServeError
from ..exec.cache import ResultCache
from ..exec.jobs import JobSpec
from ..exec.pool import execute_jobs
from ..exec.serialize import result_to_dict
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render_prometheus
from ..obs.spans import span
from ..telemetry.metrics import get_registry
from .protocol import (
    ERROR_BACKPRESSURE,
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_NOT_DONE,
    ERROR_NOT_FOUND,
    ERROR_TOO_LARGE,
    MAX_BODY_BYTES,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    DEFAULT_PORT,
    error_payload,
    is_job_id,
    job_status_payload,
    parse_submission,
)
from .scheduler import DEFAULT_QUEUE_LIMIT, FairScheduler, JobRecord

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Provenance value for jobs answered straight from the warm cache at
#: submission time (never queued; distinct from a pool-run cache probe).
SOURCE_WARM_CACHE = "cache"


@dataclass
class RawResponse:
    """A non-JSON response body (the Prometheus exposition document).

    ``_respond`` serialises everything else as JSON; routes return one
    of these when the payload is already encoded and carries its own
    content type.
    """

    body: bytes
    content_type: str


@dataclass
class ServeConfig:
    """Tunables for one server instance."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT  # 0 binds an ephemeral port (tests)
    #: Concurrent simulations (worker tasks, each running jobs in a thread).
    workers: int = 2
    #: Global queued-job bound; beyond it submissions get backpressure.
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    #: Shared content-addressed result store (None disables caching).
    cache: Optional[ResultCache] = None
    #: ``max_workers`` handed to ``execute_jobs`` per job (1 = in-thread).
    job_workers: int = 1
    #: Heartbeat cadence for per-job progress lines (None disables).
    heartbeat_interval: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.job_workers < 1:
            raise ServeError(f"job_workers must be >= 1, got {self.job_workers}")


class ReproServer:
    """One service instance; create, ``await start()``, ``await stop()``."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._scheduler = FairScheduler(self.config.queue_limit)
        self._records: Dict[str, JobRecord] = {}
        self._wake = asyncio.Event()
        self._stopping = False
        self._inflight = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: List[asyncio.Task] = []
        self._started_s = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._workers = [
            asyncio.create_task(self._worker(n), name=f"serve-worker-{n}")
            for n in range(self.config.workers)
        ]

    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started", status=500)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, let in-flight jobs finish, drop queued work."""
        self._stopping = True
        self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        await self.start()
        await stop_event.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # worker tasks
    # ------------------------------------------------------------------
    async def _worker(self, n: int) -> None:  # noqa: ARG002 (task name)
        while not self._stopping:
            record = self._scheduler.pop()
            if record is None:
                # Loop code between awaits is atomic: nothing can
                # enqueue between pop() and clear(), so no lost wakeup.
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._execute(record)

    async def _execute(self, record: JobRecord) -> None:
        registry = get_registry()
        record.state = STATE_RUNNING
        self._inflight += 1
        self._update_gauges()
        start = time.perf_counter()
        job_span = span(
            "serve.execute",
            job=record.id[:12],
            policy=record.spec.policy,
            client=record.client,
        )
        try:
            outcome = await asyncio.to_thread(self._run_record, record)
        except ReproError as exc:
            record.error = str(exc)
            record.state = STATE_FAILED
            registry.counter("serve.failed").inc()
        except Exception as exc:  # defensive: a bug must not kill the worker
            record.error = f"internal error: {exc}"
            record.state = STATE_FAILED
            registry.counter("serve.failed").inc()
        else:
            if outcome and outcome.profiles:
                record.result = result_to_dict(outcome[0])
                record.source = outcome.profiles[0].source
                record.state = STATE_DONE
                registry.counter("serve.completed").inc()
            else:  # interrupted/empty batch: report rather than hang waiters
                record.error = "execution returned no result"
                record.state = STATE_FAILED
                registry.counter("serve.failed").inc()
        finally:
            record.wall_s = time.perf_counter() - start
            job_span.set(source=record.source, state=record.state)
            job_span.finish("ok" if record.state == STATE_DONE else "error")
            registry.histogram("serve.job_wall_s").observe(record.wall_s)
            self._inflight -= 1
            self._update_gauges()

    def _run_record(self, record: JobRecord):
        """Runs on a worker thread: the only code off the event loop."""
        return execute_jobs(
            [record.spec],
            max_workers=self.config.job_workers,
            cache=self.config.cache,
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_emit=record.progress.append,
        )

    # ------------------------------------------------------------------
    # submission (event-loop thread only)
    # ------------------------------------------------------------------
    def _submit(self, client: str, specs: List[JobSpec]) -> List[JobRecord]:
        """Dedup, warm-cache short-circuit, and enqueue one submission.

        Atomic per batch: state changes only after the whole batch is
        known to fit, so backpressure refuses cleanly.
        """
        registry = get_registry()
        now = time.time()
        planned: List[Tuple[str, Any]] = []
        batch_new: Dict[str, JobRecord] = {}
        for spec in specs:
            key = spec.key()
            existing = self._records.get(key)
            if existing is not None and existing.state != STATE_FAILED:
                planned.append(("coalesce", existing))
                continue
            dup = batch_new.get(key)
            if dup is not None:  # same spec twice in one batch
                planned.append(("coalesce", dup))
                continue
            cached = self._probe_cache(spec)
            if cached is not None:
                record = JobRecord(
                    id=key, spec=spec, client=client, state=STATE_DONE,
                    submitted_s=now, wall_s=0.0, source=SOURCE_WARM_CACHE,
                    result=cached,
                )
                planned.append(("cached", record))
                continue
            record = JobRecord(id=key, spec=spec, client=client, submitted_s=now)
            batch_new[key] = record
            planned.append(("enqueue", record))

        fresh = [r for verb, r in planned if verb == "enqueue"]
        if len(fresh) > self._scheduler.room():
            registry.counter("serve.backpressure").inc()
            raise BackpressureError(
                f"queue is full ({self._scheduler.depth()}/"
                f"{self._scheduler.queue_limit} queued); retry later"
            )

        receipts: List[JobRecord] = []
        for verb, record in planned:
            if verb == "coalesce":
                record.coalesced += 1
                registry.counter("serve.coalesced").inc()
            elif verb == "cached":
                self._records[record.id] = record
                registry.counter("serve.cache_short_circuits").inc()
            else:
                self._records[record.id] = record
                self._scheduler.enqueue(record)
            receipts.append(record)
        registry.counter("serve.submitted").inc(len(specs))
        if fresh:
            self._wake.set()
        self._update_gauges()
        return receipts

    def _probe_cache(self, spec: JobSpec) -> Optional[dict]:
        """Serialised cached result for ``spec``, or ``None``.

        Runs synchronously on the loop: entries are small JSON files
        and doing the probe without an ``await`` is what makes
        check-then-insert on the dedup map race-free.
        """
        if self.config.cache is None:
            return None
        hit = self.config.cache.get(spec)
        return None if hit is None else result_to_dict(hit)

    def _update_gauges(self) -> None:
        # Queue gauges (serve.queue_depth / serve.queue_clients) are
        # maintained by the scheduler itself at every enqueue/pop.
        registry = get_registry()
        registry.gauge("serve.inflight").set(self._inflight)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except ServeError as exc:
                code = ERROR_TOO_LARGE if exc.status == 413 else ERROR_BAD_REQUEST
                await self._respond(
                    writer, exc.status, error_payload(str(exc), error=code)
                )
                return
            with span("serve.request", method=method, path=path):
                status, payload = self._dispatch(method, path, body, query)
            await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, str, bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServeError(f"malformed request line: {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServeError("Content-Length is not an integer") from None
        if length < 0:
            raise ServeError("Content-Length is negative")
        if length > MAX_BODY_BYTES:
            raise ServeError(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int,
        payload: Union[Any, RawResponse],
    ) -> None:
        if isinstance(payload, RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _dispatch(
        self, method: str, path: str, body: bytes, query: str = ""
    ) -> Tuple[int, Any]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("use GET", error=ERROR_BAD_REQUEST)
            return 200, {"status": "ok", "uptime_s": time.time() - self._started_s}
        if path == "/metrics":
            if method != "GET":
                return 405, error_payload("use GET", error=ERROR_BAD_REQUEST)
            params = urllib.parse.parse_qs(query)
            fmt = params.get("format", ["json"])[-1]
            if fmt == "prom":
                return 200, self._prometheus_response()
            if fmt != "json":
                return 400, error_payload(
                    f"unknown metrics format {fmt!r} (use json or prom)",
                    error=ERROR_BAD_REQUEST,
                )
            return 200, self._metrics_payload()
        if path == "/jobs":
            if method == "POST":
                return self._route_submit(body)
            if method == "GET":
                return 200, {"jobs": [self._status_payload(r)
                                      for r in self._records.values()]}
            return 405, error_payload("use GET or POST", error=ERROR_BAD_REQUEST)
        if path.startswith("/jobs/"):
            return self._route_job(method, path)
        return 404, error_payload(f"no such route: {path}", error=ERROR_NOT_FOUND)

    def _route_submit(self, body: bytes) -> Tuple[int, Any]:
        try:
            client, specs = parse_submission(body)
            receipts = self._submit(client, specs)
        except BackpressureError as exc:
            return exc.status, error_payload(str(exc), error=ERROR_BACKPRESSURE)
        except ServeError as exc:
            return exc.status, error_payload(str(exc), error=ERROR_BAD_REQUEST)
        except ReproError as exc:
            return 400, error_payload(str(exc), error=ERROR_BAD_REQUEST)
        payloads = [self._status_payload(r) for r in receipts]
        if len(payloads) == 1:
            return 202, payloads[0]
        return 202, {"jobs": payloads}

    def _route_job(self, method: str, path: str) -> Tuple[int, Any]:
        if method != "GET":
            return 405, error_payload("use GET", error=ERROR_BAD_REQUEST)
        parts = path.strip("/").split("/")  # jobs / <id> [/ result]
        job_id = parts[1] if len(parts) > 1 else ""
        if not is_job_id(job_id):
            return 400, error_payload(
                f"malformed job id {job_id!r} (expect 64 hex chars)",
                error=ERROR_BAD_REQUEST,
            )
        record = self._records.get(job_id)
        if record is None:
            return 404, error_payload(f"unknown job {job_id}", error=ERROR_NOT_FOUND)
        if len(parts) == 2:
            return 200, self._status_payload(record)
        if len(parts) == 3 and parts[2] == "result":
            if record.state == STATE_DONE:
                return 200, {"id": record.id, "source": record.source,
                             "result": record.result}
            if record.state == STATE_FAILED:
                return 409, error_payload(
                    f"job failed: {record.error}", error=ERROR_NOT_DONE
                )
            return 409, error_payload(
                f"job is {record.state}; result not available yet",
                error=ERROR_NOT_DONE,
            )
        return 404, error_payload(f"no such route: {path}", error=ERROR_NOT_FOUND)

    def _status_payload(self, record: JobRecord) -> Dict[str, Any]:
        return job_status_payload(
            record.id,
            record.state,
            record.client,
            coalesced=record.coalesced,
            source=record.source,
            error=record.error,
            submitted_s=record.submitted_s,
            wall_s=record.wall_s,
            progress=record.progress,
            workload=record.spec.workload.label,
            policy=record.spec.policy,
            system=record.spec.system.label,
        )

    def _metrics_payload(self) -> Dict[str, Any]:
        states = collections.Counter(r.state for r in self._records.values())
        cache = self.config.cache
        cache_stats = cache.stats().as_dict() if cache is not None else None
        hit_rate: Optional[float] = None
        if cache_stats is not None:
            lookups = cache_stats["hits"] + cache_stats["misses"]
            if lookups:
                hit_rate = cache_stats["hits"] / lookups
        return {
            "serve": {
                "uptime_s": time.time() - self._started_s,
                "workers": self.config.workers,
                "queue_depth": self._scheduler.depth(),
                "queue_limit": self._scheduler.queue_limit,
                "queued_by_client": self._scheduler.depths_by_client(),
                "inflight": self._inflight,
                "jobs": {
                    "total": len(self._records),
                    STATE_QUEUED: states.get(STATE_QUEUED, 0),
                    STATE_RUNNING: states.get(STATE_RUNNING, 0),
                    STATE_DONE: states.get(STATE_DONE, 0),
                    STATE_FAILED: states.get(STATE_FAILED, 0),
                },
                "cache": cache_stats,
                "cache_hit_rate": hit_rate,
            },
            "registry": get_registry().snapshot(),
        }

    def _prometheus_response(self) -> RawResponse:
        """``/metrics?format=prom``: the registry plus point-in-time
        server facts (uptime, job states, queue bound) as extra gauges,
        in Prometheus text-exposition 0.0.4."""
        states = collections.Counter(r.state for r in self._records.values())
        extra: Dict[str, float] = {
            "serve.uptime_s": time.time() - self._started_s,
            "serve.workers": self.config.workers,
            "serve.queue_limit": self._scheduler.queue_limit,
            "serve.jobs": len(self._records),
        }
        for state in (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED):
            extra[f"serve.jobs_{state}"] = states.get(state, 0)
        cache = self.config.cache
        if cache is not None:
            stats = cache.stats().as_dict()
            for key, value in stats.items():
                extra[f"serve.cache_{key}"] = value
        text = render_prometheus(get_registry(), extra_gauges=extra)
        return RawResponse(text.encode("utf-8"), PROM_CONTENT_TYPE)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def serve_forever(config: Optional[ServeConfig] = None) -> int:
    """Blocking entry point for ``repro serve``: run until SIGINT/SIGTERM."""
    import signal

    config = config or ServeConfig()

    async def _main() -> None:
        server = ReproServer(config)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # non-Unix hosts
                pass
        await server.start()
        import sys

        print(
            f"repro serve listening on http://{config.host}:{server.port} "
            f"({config.workers} worker(s), queue limit "
            f"{config.queue_limit}, cache "
            f"{'at ' + str(config.cache.root) if config.cache else 'disabled'})",
            file=sys.stderr,
        )
        await stop.wait()
        print("shutting down (in-flight jobs finish, queued jobs drop)",
              file=sys.stderr)
        await server.stop()

    asyncio.run(_main())
    return 0


@dataclass
class ServerHandle:
    """A live background server (tests, the demo script)."""

    server: ReproServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    stop_event: asyncio.Event
    port: int = 0

    @property
    def host(self) -> str:
        return self.server.config.host

    def stop(self, timeout: float = 30.0) -> None:
        self.loop.call_soon_threadsafe(self.stop_event.set)
        self.thread.join(timeout=timeout)


@contextlib.contextmanager
def serve_in_thread(config: Optional[ServeConfig] = None):
    """Run a server on a background thread; yields a :class:`ServerHandle`.

    Binds an ephemeral port by default (``port=0``) so parallel test
    runs never collide.
    """
    config = config or ServeConfig(port=0)
    server = ReproServer(config)
    started = threading.Event()
    boot_error: List[BaseException] = []
    handle_box: List[ServerHandle] = []

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind failures to the caller
            boot_error.append(exc)
            started.set()
            loop.close()
            return
        handle = ServerHandle(
            server=server, thread=thread, loop=loop, stop_event=stop,
            port=server.port,
        )
        handle_box.append(handle)
        started.set()
        try:
            loop.run_until_complete(stop.wait())
            loop.run_until_complete(server.stop())
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if boot_error:
        raise ServeError(f"server failed to start: {boot_error[0]}", status=500)
    if not handle_box:
        raise ServeError("server failed to start within 30s", status=500)
    handle = handle_box[0]
    try:
        yield handle
    finally:
        handle.stop()
