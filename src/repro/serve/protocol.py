"""Wire protocol for the simulation service.

Everything the server and client exchange is JSON over HTTP; this
module is the shared vocabulary — job states, route shapes, the
submission parser, and the per-job status payload — so the server,
the client, and the tests cannot drift apart.

Canonical identity is the heart of the protocol: a submission is
parsed into a :class:`~repro.exec.jobs.JobSpec` and its **job id is
the spec's SHA-256 content address** — the exact key
:class:`~repro.exec.cache.ResultCache` stores results under. That one
decision buys the service's headline property for free: two clients
submitting the same experiment compute the same id, so the server can
coalesce them onto one queue entry, and a warm cache can answer either
of them without simulating anything.

Routes
------
``POST /jobs``
    Body ``{"client": NAME, "job": {...}}`` or
    ``{"client": NAME, "jobs": [{...}, ...]}`` where each job is a
    canonical :meth:`JobSpec.to_dict` payload. Responds with one
    receipt per job (id, state, whether it was coalesced or served
    from cache), or 429 ``{"error": "backpressure"}`` when the global
    queue cannot take the batch.
``GET /jobs/<id>``
    Status payload for one job (state, provenance, queue facts,
    heartbeat progress lines).
``GET /jobs/<id>/result``
    The serialised :class:`RunResult` once the job is ``done`` (409
    while it is still queued/running, 404 for unknown ids).
``GET /jobs``
    Summary list of every job the server knows about.
``GET /metrics``
    JSON snapshot: serve-level gauges (queue depth, in-flight, cache
    hit rate) plus the whole process metrics registry.
``GET /healthz``
    Liveness probe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServeError
from ..exec.jobs import JobSpec

# Lifecycle of one job record. ``queued -> running -> done`` is the
# normal path; ``failed`` is terminal for the record but not for the
# key (a resubmission of a failed key starts a fresh attempt).
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED)

#: Client name used when a submission does not identify itself.
DEFAULT_CLIENT = "anonymous"

#: Default TCP port; override with ``repro serve --port``.
DEFAULT_PORT = 8421

#: Submissions larger than this are rejected with 413 before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024

_HEX = set("0123456789abcdef")


def is_job_id(text: str) -> bool:
    """True for a well-formed content address (64 lowercase hex chars)."""
    return isinstance(text, str) and len(text) == 64 and set(text) <= _HEX


def parse_submission(body: bytes) -> Tuple[str, List[JobSpec]]:
    """Decode a ``POST /jobs`` body into ``(client_name, specs)``.

    Accepts the single-job form (``"job"``) and the batch form
    (``"jobs"``); raises :class:`ServeError` (status 400) for anything
    malformed, naming the offending part.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"submission body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ServeError("submission must be a JSON object")
    client = data.get("client", DEFAULT_CLIENT)
    if not isinstance(client, str) or not client:
        raise ServeError("'client' must be a non-empty string")

    if "job" in data and "jobs" in data:
        raise ServeError("submission carries both 'job' and 'jobs'; pick one")
    if "job" in data:
        raw_jobs = [data["job"]]
    elif "jobs" in data:
        raw_jobs = data["jobs"]
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ServeError("'jobs' must be a non-empty list of job specs")
    else:
        raise ServeError("submission needs a 'job' (or 'jobs') spec")

    specs: List[JobSpec] = []
    for n, raw in enumerate(raw_jobs):
        if not isinstance(raw, dict):
            raise ServeError(f"jobs[{n}] is not a JSON object")
        try:
            specs.append(JobSpec.from_dict(raw))
        except Exception as exc:
            raise ServeError(f"jobs[{n}] is not a valid job spec: {exc}") from None
    return client, specs


def submission_body(
    specs: List[JobSpec], client: str = DEFAULT_CLIENT
) -> Dict[str, Any]:
    """The JSON body :meth:`ServeClient.submit` posts for ``specs``."""
    if len(specs) == 1:
        return {"client": client, "job": specs[0].to_dict()}
    return {"client": client, "jobs": [spec.to_dict() for spec in specs]}


def job_status_payload(
    job_id: str,
    state: str,
    client: str,
    *,
    coalesced: int = 0,
    source: Optional[str] = None,
    error: Optional[str] = None,
    submitted_s: Optional[float] = None,
    wall_s: Optional[float] = None,
    progress: Optional[List[str]] = None,
    workload: Optional[str] = None,
    policy: Optional[str] = None,
    system: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``GET /jobs/<id>`` (and receipt) shape, one place only."""
    return {
        "id": job_id,
        "state": state,
        "client": client,
        "coalesced": coalesced,
        "source": source,
        "error": error,
        "submitted_s": submitted_s,
        "wall_s": wall_s,
        "progress": list(progress or ()),
        "workload": workload,
        "policy": policy,
        "system": system,
    }


def error_payload(message: str, *, error: str = "bad-request") -> Dict[str, str]:
    """Uniform error body: ``{"error": <code>, "detail": <message>}``."""
    return {"error": error, "detail": message}


#: The machine-readable error codes the server emits.
ERROR_BACKPRESSURE = "backpressure"
ERROR_BAD_REQUEST = "bad-request"
ERROR_NOT_FOUND = "not-found"
ERROR_NOT_DONE = "not-done"
ERROR_TOO_LARGE = "too-large"
ERROR_INTERNAL = "internal"
