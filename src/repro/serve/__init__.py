"""repro.serve — simulation-as-a-service over the execution engine.

``repro.exec`` turned one experiment into a content-addressed value
and a batch of them into a cached, profiled pool run; this package
puts a network front on that machinery. An asyncio HTTP/JSON server
(:class:`ReproServer`, stdlib only) accepts canonical job specs,
coalesces identical in-flight submissions onto one record (the job id
*is* the cache key), short-circuits warm-cache hits without queueing,
schedules the rest fairly across clients (per-client FIFO,
round-robin, bounded queue with 429 backpressure), and serves status,
results, and a ``/metrics`` snapshot wired to the process metrics
registry. :class:`ServeClient` is the matching stdlib client behind
``repro submit|status|result``.
"""

from .client import ServeClient
from .protocol import (
    DEFAULT_CLIENT,
    DEFAULT_PORT,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATES,
    is_job_id,
    parse_submission,
    submission_body,
)
from .scheduler import DEFAULT_QUEUE_LIMIT, FairScheduler, JobRecord
from .server import (
    ReproServer,
    ServeConfig,
    ServerHandle,
    serve_forever,
    serve_in_thread,
)

__all__ = [
    "DEFAULT_CLIENT",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "FairScheduler",
    "JobRecord",
    "ReproServer",
    "STATES",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServeClient",
    "ServeConfig",
    "ServerHandle",
    "is_job_id",
    "parse_submission",
    "serve_forever",
    "serve_in_thread",
    "submission_body",
]
