"""Blocking stdlib client for the simulation service.

Used by the ``repro submit|status|result`` CLI commands, the tests,
and the serve demo; anything that speaks HTTP/JSON works too — this
class just packages the handshakes (submission body shape, error
mapping, polling) so callers deal in :class:`JobSpec` in and
:class:`RunResult` out.

Error mapping mirrors the server's codes: a 429 raises
:class:`~repro.errors.BackpressureError`, every other error response
raises :class:`~repro.errors.ServeError` carrying the HTTP status and
the server's detail message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import BackpressureError, ServeError
from ..exec.jobs import JobSpec
from ..exec.serialize import result_from_dict
from ..sim.results import RunResult
from .protocol import (
    DEFAULT_CLIENT,
    DEFAULT_PORT,
    STATE_DONE,
    STATE_FAILED,
    submission_body,
)


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        client_id: str = DEFAULT_CLIENT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach repro serve at {self.host}:{self.port}: {exc}",
                    status=503,
                ) from None
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"malformed response from server ({response.status}): {exc}",
                status=502,
            ) from None
        return response.status, data

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        status, data = self._request(method, path, payload)
        if status < 400:
            return data
        detail = "unexpected error"
        if isinstance(data, dict):
            detail = data.get("detail") or data.get("error") or detail
            if data.get("error") == "backpressure" or status == 429:
                raise BackpressureError(detail)
        raise ServeError(f"server returned {status}: {detail}", status=status)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._checked("GET", "/metrics")

    def submit(
        self, jobs: Union[JobSpec, Sequence[JobSpec]]
    ) -> Union[Dict[str, Any], List[Dict[str, Any]]]:
        """Submit one spec (returns its receipt) or many (list of receipts).

        A receipt is the job's status payload; ``receipt["id"]`` is the
        content-addressed job id, stable across clients and retries.
        """
        single = isinstance(jobs, JobSpec)
        specs = [jobs] if single else list(jobs)
        if not specs:
            raise ServeError("nothing to submit")
        data = self._checked(
            "POST", "/jobs", submission_body(specs, client=self.client_id)
        )
        if single:
            return data
        return data["jobs"] if isinstance(data, dict) and "jobs" in data else [data]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._checked("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> RunResult:
        """The finished job's :class:`RunResult` (409 → ``ServeError``)."""
        data = self._checked("GET", f"/jobs/{job_id}/result")
        return result_from_dict(data["result"])

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`ServeError` if the job failed or the timeout
        elapsed first.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == STATE_DONE:
                return status
            if status["state"] == STATE_FAILED:
                raise ServeError(f"job {job_id} failed: {status['error']}", status=409)
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {status['state']} after {timeout:g}s",
                    status=504,
                )
            time.sleep(poll_interval)

    def run(self, spec: JobSpec, timeout: float = 300.0) -> RunResult:
        """Submit + wait + fetch in one call (the CLI's ``--wait`` path)."""
        receipt = self.submit(spec)
        if receipt["state"] == STATE_FAILED:
            raise ServeError(f"job failed: {receipt['error']}", status=409)
        if receipt["state"] != STATE_DONE:
            self.wait(receipt["id"], timeout=timeout)
        return self.result(receipt["id"])
