"""Multi-tenant job queueing: per-client FIFO, round-robin, bounded.

One greedy client must not starve everyone else, and the server must
shed load rather than queue unboundedly. :class:`FairScheduler` gives
each client its own FIFO and serves clients round-robin — a client
that enqueues 100 jobs while another enqueues 2 sees the interleaving
``A B A B A A A ...``, not ``A×100 B B`` — with one global capacity
bound; :meth:`enqueue` refuses (returns ``False``) when the bound is
hit, which the server surfaces as the 429 backpressure response.

The scheduler is a plain data structure with no locks or awaits: the
server confines every mutation to the asyncio event-loop thread, and
the unit tests drive it directly.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..errors import ServeError
from ..exec.jobs import JobSpec
from ..telemetry.metrics import get_registry
from .protocol import STATE_QUEUED

DEFAULT_QUEUE_LIMIT = 256


@dataclass
class JobRecord:
    """Server-side state of one submitted job (keyed by content address)."""

    id: str
    spec: JobSpec
    client: str
    state: str = STATE_QUEUED
    submitted_s: float = 0.0
    wall_s: Optional[float] = None
    #: How many submissions beyond the first coalesced onto this record.
    coalesced: int = 0
    #: Result provenance once done: "cache", "pool", or "serial".
    source: Optional[str] = None
    #: Serialised RunResult (``result_to_dict``) once done.
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Heartbeat lines appended by the executing worker thread.
    progress: List[str] = field(default_factory=list)


class FairScheduler:
    """Per-client FIFOs drained round-robin under one global bound."""

    def __init__(self, queue_limit: int = DEFAULT_QUEUE_LIMIT) -> None:
        if queue_limit <= 0:
            raise ServeError(f"queue_limit must be positive, got {queue_limit}")
        self.queue_limit = queue_limit
        # Client order doubles as the round-robin rotation: pop serves
        # the first client that has work, then rotates it to the back.
        self._queues: "collections.OrderedDict[str, Deque[JobRecord]]" = (
            collections.OrderedDict()
        )
        self._depth = 0

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Total queued records across all clients."""
        return self._depth

    def room(self) -> int:
        """How many more records fit before backpressure."""
        return self.queue_limit - self._depth

    def depths_by_client(self) -> Dict[str, int]:
        return {client: len(q) for client, q in self._queues.items() if q}

    # ------------------------------------------------------------------
    def enqueue(self, record: JobRecord) -> bool:
        """Append ``record`` to its client's FIFO.

        Returns ``False`` — enqueueing nothing — when the global bound
        is reached; the caller turns that into backpressure.
        """
        if self._depth >= self.queue_limit:
            return False
        queue = self._queues.get(record.client)
        if queue is None:
            queue = self._queues[record.client] = collections.deque()
        queue.append(record)
        self._depth += 1
        self._update_gauges()
        return True

    def pop(self) -> Optional[JobRecord]:
        """Next record, round-robin across clients; ``None`` when idle.

        The serving client is rotated to the back of the order whether
        or not it has more work, so a burst from one client never
        blocks another's single job for more than one slot.
        """
        for client in list(self._queues):
            queue = self._queues[client]
            self._queues.move_to_end(client)
            if queue:
                self._depth -= 1
                record = queue.popleft()
                if not queue:
                    del self._queues[client]
                self._update_gauges()
                return record
            del self._queues[client]  # empty queue left by a prior pop
        return None

    def _update_gauges(self) -> None:
        """Mirror queue state into the registry at every transition, so
        ``/metrics`` (JSON or Prometheus) always shows the live depth
        without the server having to remember to refresh it."""
        registry = get_registry()
        registry.gauge("serve.queue_depth").set(self._depth)
        registry.gauge("serve.queue_clients").set(
            sum(1 for q in self._queues.values() if q)
        )
