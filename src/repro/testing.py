"""Micro-hierarchy helpers for tests, benchmarks, and experimentation.

The paper's worked examples (Figs. 3, 5, 10, 11) reason about a handful
of named blocks in a single cache set. :func:`micro_hierarchy_config`
builds a hierarchy small enough to steer by hand — a one-block L1, a
single-set L2, and a single-set LLC — and :func:`build_micro` binds it
to any registered policy. Block addresses ``A``–``H`` fall into that
one set.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

from .energy.technology import STT_RAM, TechnologyParams
from .hierarchy import CacheHierarchy, HierarchyConfig, LevelConfig, LLCLevelConfig
from .inclusion.base import InclusionPolicy

BLOCK = 64

# Named block addresses A..H — all map to the micro config's only L2 set.
A, B, C, D, E, F, G, H = (i * BLOCK for i in range(8))


def micro_hierarchy_config(
    ncores: int = 1,
    l1_bytes: int = 64,
    l2_bytes: int = 256,
    l2_assoc: int = 4,
    llc_bytes: int = 1024,
    llc_assoc: int = 16,
    tech: TechnologyParams = STT_RAM,
    sram_ways: int | None = None,
) -> HierarchyConfig:
    """A hand-steerable hierarchy: one-set L2, tiny L1, small LLC.

    With a 4-way single-set L2, four distinct blocks fill it and four
    more evict them — exactly what the Fig. 3 / Fig. 5 walk-throughs
    need.
    """
    return HierarchyConfig(
        ncores=ncores,
        block_size=BLOCK,
        l1=LevelConfig(size_bytes=l1_bytes, assoc=1, latency=1),
        l2=LevelConfig(size_bytes=l2_bytes, assoc=l2_assoc, latency=2),
        llc=LLCLevelConfig(
            size_bytes=llc_bytes, assoc=llc_assoc, banks=1, tech=tech, sram_ways=sram_ways
        ),
        mem_latency=50,
    )


def build_micro(
    policy: Union[str, InclusionPolicy],
    enable_coherence: bool = False,
    **config_kwargs,
) -> CacheHierarchy:
    """A micro hierarchy bound to ``policy`` (instance or registry name)."""
    from .core.policies import make_policy

    config = micro_hierarchy_config(**config_kwargs)
    if isinstance(policy, str):
        policy = make_policy(policy)
    return CacheHierarchy(config, policy, enable_coherence=enable_coherence)


def run_refs(
    hierarchy: CacheHierarchy,
    refs: Iterable[Tuple[int, bool]],
    core: int = 0,
) -> None:
    """Drive a hierarchy with ``(addr, is_write)`` pairs on one core."""
    for addr, is_write in refs:
        hierarchy.access(core, addr, is_write)
