"""Suite-report rendering: tables, CSV records, result-file text.

One :class:`~repro.suite.runner.SuiteReport` feeds three consumers —
the terminal (``repro suite run``), the sweep-CSV toolchain
(:func:`suite_records` emits :class:`~repro.sim.sweeps.SweepRecord`
rows that ``records_to_csv``/``load_csv`` already understand), and the
experiment record (:func:`result_text` writes the
``suite_geomean`` artefact :mod:`repro.analysis.report` indexes).
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Union

from ..analysis.tables import render_mapping_table, render_table
from ..sim.sweeps import RECORD_METRICS, SweepRecord
from .runner import SUMMARY_METRICS, SuiteReport


def benchmark_table(report: SuiteReport, metric: str = "epi") -> str:
    """Per-benchmark absolute values of one metric, policies as columns."""
    rows = []
    for outcome in report.outcomes:
        if outcome.ok:
            rows.append(
                [outcome.benchmark]
                + [getattr(outcome.results[p], metric) for p in report.policies]
            )
        else:
            rows.append([outcome.benchmark] + ["FAILED"] * len(report.policies))
    return render_table(
        f"suite {report.set_name!r}: {metric} ({report.refs_per_core} refs/core)",
        ["benchmark", *report.policies],
        rows,
    )


def geomean_table(report: SuiteReport) -> str:
    """The summary: per-policy geomean metric ratios vs the baseline."""
    summary = report.geomean_summary()
    data = {
        policy: {metric: summary[policy][metric] for metric in SUMMARY_METRICS}
        for policy in report.policies
    }
    return render_mapping_table(
        f"suite {report.set_name!r}: geomean ratios vs {report.baseline!r} "
        f"({len(report.succeeded)}/{len(report.outcomes)} benchmarks)",
        data,
        row_label="policy",
    )


def failure_lines(report: SuiteReport) -> List[str]:
    """One diagnostic line per failed benchmark (empty when all ran)."""
    return [f"FAILED {o.benchmark}: {o.error}" for o in report.failures]


def suite_records(report: SuiteReport) -> List[SweepRecord]:
    """Flatten successful runs into sweep records (CSV-ready)."""
    records: List[SweepRecord] = []
    for outcome in report.outcomes:
        if not outcome.ok:
            continue
        for policy in report.policies:
            result = outcome.results[policy]
            records.append(
                SweepRecord(
                    system=report.system,
                    workload=outcome.benchmark,
                    policy=policy,
                    metrics={m: float(getattr(result, m)) for m in RECORD_METRICS},
                )
            )
    return records


def result_text(report: SuiteReport) -> str:
    """The full text artefact: summary, per-benchmark EPI, failures."""
    parts = [geomean_table(report), "", benchmark_table(report, "epi")]
    failures = failure_lines(report)
    if failures:
        parts += ["", *failures]
    parts.append(
        f"\n{len(report.profiles)} job(s): {report.cache_hits} from cache, "
        f"{report.simulated} simulated, {report.wall_s:.1f}s wall"
    )
    return "\n".join(parts) + "\n"


def write_result_file(
    report: SuiteReport,
    results_dir: Union[str, pathlib.Path],
    name: Optional[str] = None,
) -> pathlib.Path:
    """Write the artefact ``analysis.report`` indexes (``suite_geomean``)."""
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{name or 'suite_geomean'}.txt"
    path.write_text(result_text(report))
    return path
