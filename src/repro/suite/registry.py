"""The benchmark-set registry: named suites of workloads.

The paper's headline results (Figs. 14/15/23) are defined over *sets*
of workloads — the ten Table III mixes, the thirteen SPEC-like
benchmarks, the PARSEC-like multithreaded pool. Before the registry,
every sweep hand-rolled its own list; ``repro suite run <set>`` now
names them once (SPEC-harness style: ``int``/``fp`` aliases, mix
families, trait families) and the runner fans any set out through the
exec pool.

Two member kinds exist:

- ``kind="workload"``: members are names :func:`repro.make_workload`
  resolves (mixes, SPEC-like, PARSEC-like benchmarks);
- ``kind="trace"``: members are content addresses into a trace corpus
  (:mod:`repro.workloads.corpus`); :func:`corpus_set` derives such a
  set from a corpus manifest, and :func:`resolve` accepts the
  ``corpus`` pseudo-set name when a corpus is available.

Unknown set names fail with the valid list plus a nearest-match
suggestion, mirroring :mod:`repro.arena.registry`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..workloads.corpus import TraceCorpus
from ..workloads.mixes import TABLE3_ORDER, WH_MIXES, WL_MIXES
from ..workloads.parsec import PARSEC_ORDER
from ..workloads.spec import (
    SPEC_BENCHMARKS,
    TRAIT_LOOP_HEAVY,
    TRAIT_REDUNDANT_FILL,
    benchmark_names,
)

WORKLOAD = "workload"
TRACE = "trace"
_KINDS = (WORKLOAD, TRACE)

#: The pseudo-set name that expands to "every trace in the active
#: corpus" (resolved dynamically, never registered).
CORPUS_SET = "corpus"


@dataclass(frozen=True)
class BenchmarkSet:
    """A named, ordered suite of workloads (or corpus traces)."""

    name: str
    description: str
    members: Tuple[str, ...]
    kind: str = WORKLOAD
    aliases: Tuple[str, ...] = ()
    #: display labels paired with ``members`` (trace sets show the
    #: corpus entry's name, not its digest); defaults to the members.
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(
                f"unknown benchmark-set kind {self.kind!r}; known: {_KINDS}"
            )
        if not self.members:
            raise WorkloadError(f"benchmark set {self.name!r} has no members")
        if self.labels is not None and len(self.labels) != len(self.members):
            raise WorkloadError(
                f"benchmark set {self.name!r}: {len(self.labels)} labels "
                f"for {len(self.members)} members"
            )

    def __len__(self) -> int:
        return len(self.members)

    def member_labels(self) -> Tuple[str, ...]:
        return self.labels if self.labels is not None else self.members


_SETS: Dict[str, BenchmarkSet] = {}
_ALIASES: Dict[str, str] = {}


def register_set(bset: BenchmarkSet) -> BenchmarkSet:
    """Add a set to the registry (name and aliases must be fresh)."""
    for name in (bset.name, *bset.aliases):
        if name in _SETS or name in _ALIASES or name == CORPUS_SET:
            raise WorkloadError(f"benchmark set name {name!r} registered twice")
    _SETS[bset.name] = bset
    for alias in bset.aliases:
        _ALIASES[alias] = bset.name
    return bset


def set_names() -> Tuple[str, ...]:
    """Every canonical set name, in registration order."""
    return tuple(_SETS)


def sets() -> Tuple[BenchmarkSet, ...]:
    return tuple(_SETS.values())


def suggest(name: str) -> Optional[str]:
    """Nearest known set name or alias, for error messages."""
    matches = difflib.get_close_matches(
        name, [*_SETS, *_ALIASES, CORPUS_SET], n=1, cutoff=0.5
    )
    return matches[0] if matches else None


def unknown_set(name: str) -> WorkloadError:
    """Build the error for an unknown set: valid names + nearest match."""
    message = (
        f"unknown benchmark set {name!r}; valid sets: "
        f"{', '.join(sorted([*_SETS, CORPUS_SET]))}"
    )
    near = suggest(name)
    if near is not None:
        near = _ALIASES.get(near, near)
        message += f" (did you mean {near!r}?)"
    return WorkloadError(message)


def get_set(name: str) -> BenchmarkSet:
    """Look up a registered set by canonical name or alias."""
    bset = _SETS.get(name)
    if bset is None:
        target = _ALIASES.get(name)
        bset = _SETS.get(target) if target else None
    if bset is None:
        raise unknown_set(name)
    return bset


def corpus_set(
    corpus: TraceCorpus,
    name: str = CORPUS_SET,
    members: Optional[Sequence[str]] = None,
) -> BenchmarkSet:
    """A trace set over a corpus: every entry, or a named subset."""
    if members is None:
        entries = corpus.entries()
    else:
        entries = tuple(corpus.get(m) for m in members)
    if not entries:
        raise WorkloadError(f"corpus {corpus.root} is empty; nothing to run")
    return BenchmarkSet(
        name=name,
        description=f"every trace in the corpus at {corpus.root}",
        members=tuple(e.digest for e in entries),
        labels=tuple(e.name for e in entries),
        kind=TRACE,
    )


def resolve(name: str, corpus: Optional[TraceCorpus] = None) -> BenchmarkSet:
    """Resolve a set name, including the dynamic ``corpus`` pseudo-set.

    ``corpus`` (the whole active corpus) only resolves when a corpus is
    actually available; registered names win otherwise.
    """
    if name == CORPUS_SET:
        if corpus is None:
            raise WorkloadError(
                f"the {CORPUS_SET!r} set needs a trace corpus: pass "
                "--corpus or set $REPRO_CORPUS_DIR"
            )
        return corpus_set(corpus)
    return get_set(name)


# ----------------------------------------------------------------------
# built-in sets
# ----------------------------------------------------------------------

# SPEC CPU2006's own integer/floating-point split, restricted to the
# thirteen benchmarks the paper models (Section V).
SPEC_INT = ("bzip2", "mcf", "omnetpp", "astar", "xalancbmk", "libquantum")
SPEC_FP = ("bwaves", "milc", "zeusmp", "leslie3d", "dealII", "GemsFDTD", "lbm")

register_set(BenchmarkSet(
    name="paper",
    description="the ten Table III mixes behind Figs. 14-19 (WL1-WH5)",
    members=TABLE3_ORDER,
    aliases=("table3", "mixes"),
))
register_set(BenchmarkSet(
    name="wl",
    description="the write-light mix family (fewer LLC writes under exclusion)",
    members=WL_MIXES,
))
register_set(BenchmarkSet(
    name="wh",
    description="the write-heavy mix family (more LLC writes under exclusion)",
    members=WH_MIXES,
))
register_set(BenchmarkSet(
    name="spec",
    description="all thirteen SPEC-like benchmarks, paper x-axis order "
    "(each runs as duplicate copies per core)",
    members=benchmark_names(),
    aliases=("all",),
))
register_set(BenchmarkSet(
    name="int",
    description="the SPEC CPU2006 integer benchmarks among the thirteen",
    members=SPEC_INT,
    aliases=("specint",),
))
register_set(BenchmarkSet(
    name="fp",
    description="the SPEC CPU2006 floating-point benchmarks among the thirteen",
    members=SPEC_FP,
    aliases=("specfp",),
))
register_set(BenchmarkSet(
    name="loop",
    description="benchmarks with >20% loop-blocks (Fig. 4's loop-heavy class)",
    members=tuple(
        b for b in benchmark_names()
        if TRAIT_LOOP_HEAVY in SPEC_BENCHMARKS[b].traits
    ),
))
register_set(BenchmarkSet(
    name="redundant-fill",
    description="benchmarks with >25% redundant LLC data-fills (Fig. 6)",
    members=tuple(
        b for b in benchmark_names()
        if TRAIT_REDUNDANT_FILL in SPEC_BENCHMARKS[b].traits
    ),
))
register_set(BenchmarkSet(
    name="parsec",
    description="the PARSEC-like multithreaded pool (Fig. 20)",
    members=PARSEC_ORDER,
))
