"""Named benchmark suites over the exec pool.

``repro.suite`` is the harness layer the paper's evaluation implies:
named sets of workloads (the Table III mixes, SPEC-like int/fp splits,
trait families, trace corpora) that fan out through
:func:`repro.exec.pool.execute_jobs` with per-benchmark error
surfacing and a geomean summary normalised to a baseline policy.
"""

from .registry import (
    CORPUS_SET,
    BenchmarkSet,
    corpus_set,
    get_set,
    register_set,
    resolve,
    set_names,
    sets,
    suggest,
    unknown_set,
)
from .report import (
    benchmark_table,
    failure_lines,
    geomean_table,
    result_text,
    suite_records,
    write_result_file,
)
from .runner import (
    DEFAULT_POLICIES,
    SUMMARY_METRICS,
    BenchmarkOutcome,
    SuiteReport,
    run_suite,
    workload_spec_for,
)

__all__ = [
    "BenchmarkSet",
    "CORPUS_SET",
    "register_set",
    "set_names",
    "sets",
    "get_set",
    "resolve",
    "corpus_set",
    "suggest",
    "unknown_set",
    "BenchmarkOutcome",
    "SuiteReport",
    "run_suite",
    "workload_spec_for",
    "DEFAULT_POLICIES",
    "SUMMARY_METRICS",
    "benchmark_table",
    "geomean_table",
    "failure_lines",
    "suite_records",
    "result_text",
    "write_result_file",
]
