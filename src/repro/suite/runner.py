"""Suite execution: fan a named benchmark set through the exec pool.

Each set member becomes one :class:`~repro.exec.jobs.JobSpec` batch
(one job per policy, bit-identical traces within the batch) executed
via :func:`repro.exec.pool.execute_jobs` — so suites inherit the
pool's parallelism, the content-addressed result cache (a cache-warm
rerun simulates nothing), retry policy, and per-job profiling.
Failures are surfaced *per benchmark* (instrumentation-infra style):
one broken member records its error string and the rest of the suite
still runs, instead of one exception killing a thousand-job night run.

The aggregate is the paper's own summary statistic: per-policy
geometric means over the per-benchmark metric ratios, normalised to
the suite's baseline policy (the first one).
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError, ReproError
from ..exec.cache import ResultCache
from ..exec.jobs import JobSpec, WorkloadSpec
from ..exec.pool import execute_jobs
from ..sim.results import RunResult
from ..sim.system import SystemConfig
from ..telemetry.profiling import JobProfile, RunManifest
from ..utils import geometric_mean
from ..workloads.corpus import TraceCorpus, active_corpus, set_active_corpus
from ..workloads.mixes import TABLE3_MIXES
from ..workloads.parsec import PARSEC_BENCHMARKS
from .registry import TRACE, BenchmarkSet, resolve

DEFAULT_POLICIES = ("non-inclusive", "exclusive", "lap")

#: Metrics aggregated into the geomean summary (ratios vs baseline).
SUMMARY_METRICS = ("epi", "dynamic_epi", "llc_writes", "mpki", "throughput")


def workload_spec_for(
    member: str, bset: BenchmarkSet, ncores: int, seed: int = 0
) -> WorkloadSpec:
    """The declarative spec for one set member on an ``ncores`` system."""
    if bset.kind == TRACE:
        return WorkloadSpec.trace((member,), ncores=ncores)
    if member in TABLE3_MIXES:
        return WorkloadSpec.mix(member, seed=seed)
    if member in PARSEC_BENCHMARKS:
        return WorkloadSpec.multithreaded(member, nthreads=ncores, seed=seed)
    return WorkloadSpec.duplicate(member, ncores=ncores, seed=seed)


@dataclass
class BenchmarkOutcome:
    """One set member's runs across every suite policy (or its error)."""

    benchmark: str
    results: Dict[str, RunResult] = field(default_factory=dict)
    error: Optional[str] = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SuiteReport:
    """Everything one ``repro suite run`` produced."""

    set_name: str
    system: str
    policies: Tuple[str, ...]
    refs_per_core: int
    outcomes: List[BenchmarkOutcome]
    profiles: List[JobProfile] = field(default_factory=list)
    max_workers: int = 1
    wall_s: float = 0.0

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------
    @property
    def baseline(self) -> str:
        return self.policies[0]

    @property
    def failures(self) -> List[BenchmarkOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def succeeded(self) -> List[BenchmarkOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.profiles if p.source == "cache")

    @property
    def simulated(self) -> int:
        """Jobs that actually ran (pool or serial, not cache)."""
        return sum(1 for p in self.profiles if p.source != "cache")

    def manifest(self) -> RunManifest:
        return RunManifest(
            jobs=list(self.profiles), max_workers=self.max_workers, wall_s=self.wall_s
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def ratios(self, metric: str) -> Dict[str, Dict[str, float]]:
        """benchmark -> policy -> metric ratio vs the baseline policy."""
        rows: Dict[str, Dict[str, float]] = {}
        for outcome in self.succeeded:
            base = getattr(outcome.results[self.baseline], metric)
            base = float(base) if float(base) > 0 else 1e-30
            rows[outcome.benchmark] = {
                policy: max(1e-30, float(getattr(outcome.results[policy], metric)))
                / base
                for policy in self.policies
            }
        return rows

    def geomean_summary(self) -> Dict[str, Dict[str, float]]:
        """policy -> metric -> geomean ratio across succeeded benchmarks."""
        if not self.succeeded:
            raise AnalysisError(
                f"suite {self.set_name!r} has no successful benchmarks to aggregate"
            )
        summary: Dict[str, Dict[str, float]] = {p: {} for p in self.policies}
        for metric in SUMMARY_METRICS:
            per_bench = self.ratios(metric)
            for policy in self.policies:
                summary[policy][metric] = geometric_mean(
                    [per_bench[b][policy] for b in per_bench]
                )
        return summary


def run_suite(
    bset: Union[str, BenchmarkSet],
    system: SystemConfig,
    policies: Sequence[str] = DEFAULT_POLICIES,
    refs_per_core: int = 10_000,
    seed: int = 0,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    corpus: Optional[TraceCorpus] = None,
    progress: Optional[Callable[[str], None]] = None,
    heartbeat_interval: Optional[float] = None,
) -> SuiteReport:
    """Run every member of a benchmark set under every policy.

    ``bset`` is a set name (``resolve``-d, so ``"corpus"`` works when a
    corpus is given) or a :class:`BenchmarkSet` instance. Each member's
    policy batch goes through :func:`execute_jobs`, inheriting pool
    fan-out and the result cache; a member that raises records its
    error and the suite continues. When a cache is present the merged
    manifest (every member's job profiles) is written next to the
    cached results, so ``repro report`` picks suite runs up like any
    sweep.
    """
    from ..arena import registry as arena_registry
    from ..telemetry.metrics import get_registry

    if corpus is None:
        corpus = active_corpus()  # the $REPRO_CORPUS_DIR channel
    if isinstance(bset, str):
        bset = resolve(bset, corpus=corpus)
    policies = tuple(arena_registry.validate_names(policies))
    if not policies:
        raise AnalysisError("a suite run needs at least one policy")
    if refs_per_core <= 0:
        raise AnalysisError(f"refs_per_core must be positive, got {refs_per_core}")

    previous_corpus = set_active_corpus(corpus) if corpus is not None else None
    start = time.perf_counter()
    outcomes: List[BenchmarkOutcome] = []
    profiles: List[JobProfile] = []
    ncores = system.hierarchy.ncores
    try:
        for member, label in zip(bset.members, bset.member_labels()):
            outcome = BenchmarkOutcome(benchmark=label)
            bench_start = time.perf_counter()
            try:
                spec = workload_spec_for(member, bset, ncores, seed=seed)
                jobs = [
                    JobSpec(
                        system=system,
                        workload=spec,
                        policy=policy,
                        refs_per_core=refs_per_core,
                    )
                    for policy in policies
                ]
                batch = execute_jobs(
                    jobs,
                    max_workers=max_workers,
                    cache=cache,
                    heartbeat_interval=heartbeat_interval,
                )
                outcome.results = dict(zip(policies, batch))
                profiles.extend(batch.profiles)
            except ReproError as exc:
                outcome.error = str(exc)
            outcome.wall_s = time.perf_counter() - bench_start
            outcomes.append(outcome)
            if progress is not None:
                status = "ok" if outcome.ok else f"FAILED: {outcome.error}"
                progress(f"{label}: {status} ({outcome.wall_s:.1f}s)")
    finally:
        if corpus is not None:
            set_active_corpus(previous_corpus)

    report = SuiteReport(
        set_name=bset.name,
        system=system.label,
        policies=policies,
        refs_per_core=refs_per_core,
        outcomes=outcomes,
        profiles=profiles,
        max_workers=max_workers,
        wall_s=time.perf_counter() - start,
    )
    metrics = get_registry()
    metrics.counter("suite.benchmarks").inc(len(outcomes))
    metrics.counter("suite.failures").inc(len(report.failures))
    if cache is not None and profiles:
        report.manifest().write(pathlib.Path(cache.root))
    return report
