"""The TagStore contract: the substrate layer under every cache.

A :class:`TagStore` owns the tag-array state of one cache — tags,
valid/dirty/loop bits, per-way recency stamps (``last_access`` /
``insert_seq``), RRPV counters, coherence-state labels, the per-way
technology map of a hybrid LLC, and the per-set loop-block counters.
Everything above it (:class:`~repro.cache.cache.Cache`, the replacement
policies, the inclusion policies, the hierarchy engine) manipulates that
state only through the *block-view protocol*: per-way objects exposing
the attribute set of :class:`~repro.cache.block.CacheBlock`, grouped
into :class:`~repro.cache.set.CacheSet` containers with O(1) tag maps.

Two implementations ship:

- ``"object"`` (:mod:`repro.kernel.object_store`) — the views *are*
  plain :class:`CacheBlock` objects, one Python object per way, exactly
  the pre-refactor layout. This is the reference backend.
- ``"soa"`` (:mod:`repro.kernel.soa`) — the canonical state lives in
  numpy ``int64``/``bool`` matrices of shape ``(num_sets, assoc)``
  (struct-of-arrays), the views are thin proxies over matrix cells, and
  the store additionally exposes the raw matrices plus vectorized
  find/victim/occupancy queries and a checkout/checkin protocol that
  the batched probe-free reference loop (:mod:`repro.kernel.batch`)
  uses to run whole trace batches without touching Python objects.

The contract both backends must satisfy:

1. **View protocol** — every element of ``set.blocks`` behaves like a
   :class:`CacheBlock`: readable/writable ``tag``, ``valid``, ``dirty``,
   ``loop_bit``, ``last_access``, ``insert_seq``, ``rrpv``, ``state``
   (MOESI string), read-only ``tech``/``way``, owning ``cset``, and the
   ``fill``/``reset``/``set_loop_bit`` methods with identical
   semantics (including per-set ``loop_count`` maintenance).
2. **Set protocol** — ``store.sets[i]`` is a
   :class:`~repro.cache.set.CacheSet` (or protocol-identical object):
   ``blocks``, ``tag_map``, ``loop_count``, ``find``, ``install``,
   ``drop``, ``region_blocks``, ``valid_blocks``, ``occupancy``.
3. **Determinism** — given the same operation sequence, both backends
   leave byte-identical logical state (same tags in the same ways,
   same stamps, same counters). This is what makes the ``soa`` backend
   switchable under the differential harness: any instrumented or
   generic run is *structurally* bit-identical because it executes the
   same code over the same protocol.

Stores never count events: statistics remain the cache's job, so the
stats contract is untouched by backend choice.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cache.set import CacheSet


class TagStore:
    """Abstract tag-array substrate for one cache (see module docs)."""

    #: backend registry name ("object" / "soa")
    kind: str = "abstract"
    #: whether :mod:`repro.kernel.batch` can run its flattened batched
    #: reference loop against this store (requires the checkout/checkin
    #: protocol of the SoA backend).
    supports_batch: bool = False

    def __init__(self, num_sets: int, assoc: int, way_techs: Sequence[str]) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.way_techs = list(way_techs)
        self.sets: List[CacheSet] = []

    # ------------------------------------------------------------------
    # queries every backend answers (vectorized where it can)
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total valid lines across all sets."""
        return sum(len(s.tag_map) for s in self.sets)

    def loop_block_occupancy(self) -> Tuple[int, int]:
        """(valid lines, valid lines with loop_bit set) — Fig. 16."""
        valid = 0
        loops = 0
        for s in self.sets:
            valid += len(s.tag_map)
            loops += s.loop_count
        return valid, loops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(kind={self.kind}, sets={self.num_sets}, "
            f"assoc={self.assoc})"
        )
