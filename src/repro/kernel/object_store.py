"""The reference TagStore: one Python object per way.

This is the pre-refactor data layout, unchanged: each way is a
:class:`~repro.cache.block.CacheBlock` with ``__slots__``, grouped into
:class:`~repro.cache.set.CacheSet` objects that own the tag maps and
loop counters. It exists as a named backend so the ``soa`` layout has a
bit-identical baseline to differentially test against, and as the
fallback wherever numpy is unavailable.
"""

from __future__ import annotations

from typing import Sequence

from ..cache.set import CacheSet
from .base import TagStore


class ObjectTagStore(TagStore):
    """Array-of-structs layout: plain ``CacheBlock`` objects."""

    kind = "object"
    supports_batch = False

    def __init__(self, num_sets: int, assoc: int, way_techs: Sequence[str]) -> None:
        super().__init__(num_sets, assoc, way_techs)
        self.sets = [CacheSet(i, assoc, self.way_techs) for i in range(num_sets)]
