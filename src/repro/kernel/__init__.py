"""Swappable tag-store backends + the batched simulation kernel.

``repro.kernel`` owns the data layout *under* every cache:

- :mod:`repro.kernel.base` — the :class:`TagStore` contract;
- :mod:`repro.kernel.object_store` — ``"object"``: one Python
  ``CacheBlock`` per way (the reference layout);
- :mod:`repro.kernel.soa` — ``"soa"``: struct-of-arrays numpy matrices
  with proxy views, vectorized queries, and checkout/checkin;
- :mod:`repro.kernel.batch` — the flattened probe-free reference loop
  that runs whole trace batches against a checked-out SoA store.

Backend selection: explicit argument > ``REPRO_TAG_BACKEND``
environment variable > ``"object"``. The ``"soa"`` backend requires
numpy; asking for it without numpy raises a
:class:`~repro.errors.ConfigurationError` naming the missing
dependency rather than silently falling back.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from ..errors import ConfigurationError
from .base import TagStore
from .object_store import ObjectTagStore

try:  # numpy is an optional dependency of the kernel layer
    from .soa import SoATagStore

    _NUMPY_OK = True
except ImportError:  # pragma: no cover - numpy-less environments
    SoATagStore = None  # type: ignore[assignment,misc]
    _NUMPY_OK = False

#: concrete backend names accepted everywhere a ``tag_backend`` knob
#: exists; ``"auto"`` (SystemConfig only) resolves to one of these.
TAG_BACKENDS = ("object", "soa")

#: environment override consulted when no explicit backend is given —
#: the CI soa matrix leg sets ``REPRO_TAG_BACKEND=soa`` to route every
#: cache in the tier-1 suite through the SoA store.
ENV_VAR = "REPRO_TAG_BACKEND"


def numpy_available() -> bool:
    """Whether the numpy-backed ``"soa"`` store can be built."""
    return _NUMPY_OK


def resolve_backend(name: Optional[str] = None, default: str = "object") -> str:
    """Resolve a backend name: explicit > ``REPRO_TAG_BACKEND`` > default."""
    if name is None:
        name = os.environ.get(ENV_VAR) or default
    if name not in TAG_BACKENDS:
        raise ConfigurationError(
            f"unknown tag backend {name!r}; expected one of {TAG_BACKENDS}"
        )
    if name == "soa" and not _NUMPY_OK:
        raise ConfigurationError(
            "tag backend 'soa' requires numpy, which is not importable in "
            "this environment; install numpy or use tag_backend='object'"
        )
    return name


def make_tag_store(
    kind: str, num_sets: int, assoc: int, way_techs: Sequence[str]
) -> TagStore:
    """Build the tag store for one cache."""
    kind = resolve_backend(kind)
    if kind == "soa":
        return SoATagStore(num_sets, assoc, way_techs)
    return ObjectTagStore(num_sets, assoc, way_techs)


def batched_policy_names() -> tuple:
    """Policy names declared batched-kernel-eligible by the registry.

    The ground truth remains :func:`repro.kernel.batch.kernel_mode`
    (exact-type dispatch over a built policy instance); the registry
    carries the *declaration*, and the test suite asserts the two
    agree for every registered policy. New policies default to the
    generic path — they appear here only once both the declaration and
    a kernel mode exist.
    """
    from ..arena.registry import batched_names

    return batched_names()


__all__ = [
    "ENV_VAR",
    "TAG_BACKENDS",
    "TagStore",
    "ObjectTagStore",
    "SoATagStore",
    "batched_policy_names",
    "make_tag_store",
    "numpy_available",
    "resolve_backend",
]
