"""Struct-of-arrays TagStore: numpy matrices + proxy views.

The canonical tag-array state of one cache lives in eight matrices of
shape ``(num_sets, assoc)``:

=============  ==========  ===================================
matrix         dtype       meaning
=============  ==========  ===================================
``tag``        int64       block tag (-1 when invalid)
``valid``      bool        valid bit
``dirty``      bool        write-back dirty bit
``loop_bit``   bool        LAP loop-bit
``last_access``int64       recency stamp (cache tick)
``insert_seq`` int64       tick at insertion (reuse detection)
``rrpv``       int64       SRRIP re-reference prediction value
``state``      int8        MOESI state code (see ``STATE_CODES``)
=============  ==========  ===================================

Row ``i`` is set ``i``; column ``w`` is way ``w``. The per-way
technology strings of a hybrid LLC are shared across rows (every set
partitions its ways the same way), so they stay a plain list.

Layered on top:

- :class:`SoABlockView` — a per-(set, way) proxy satisfying the
  :class:`~repro.cache.block.CacheBlock` protocol exactly; reads and
  writes go straight to the matrix cells. Anything that speaks the
  block protocol (replacement policies, inclusion policies, coherence,
  invariant probes, tests) runs unmodified over these views, which is
  what makes the backend switch structurally bit-identical.
- :class:`~repro.cache.set.CacheSet` containers built over the views,
  so the set protocol (tag maps, loop counters, install/drop) is the
  *same code* as the object backend.
- vectorized bulk queries (:meth:`SoATagStore.find_ways`,
  :meth:`SoATagStore.lru_victims`, :meth:`SoATagStore.loop_block_occupancy`)
  answered with whole-matrix numpy ops.
- the checkout/checkin protocol :mod:`repro.kernel.batch` uses:
  scalar indexing into numpy arrays costs ~3-5x a Python list index,
  so the batch kernel *checks out* the matrices as flat Python lists,
  runs its inlined reference loop on those, and *checks in* the result
  with bulk numpy writes. Between checkouts the matrices are canonical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cache.block import (
    STATE_EXCLUSIVE,
    STATE_INVALID,
    STATE_MODIFIED,
    STATE_NONE,
    STATE_OWNED,
    STATE_SHARED,
)
from ..cache.set import CacheSet
from .base import TagStore

#: MOESI state string <-> int8 code, ``"-"`` (no coherence) is 0 so a
#: zeroed matrix is a valid fresh cache.
STATE_CODES: Dict[str, int] = {
    STATE_NONE: 0,
    STATE_INVALID: 1,
    STATE_SHARED: 2,
    STATE_EXCLUSIVE: 3,
    STATE_OWNED: 4,
    STATE_MODIFIED: 5,
}
CODE_STATES: Tuple[str, ...] = tuple(
    s for s, _ in sorted(STATE_CODES.items(), key=lambda kv: kv[1])
)


class SoABlockView:
    """One (set, way) cell of the matrices, speaking the block protocol.

    Pure proxy: holds no line state of its own, only coordinates. All
    attribute access converts to/from plain Python scalars so callers
    never see numpy scalar types (equality, hashing and arithmetic
    behave exactly as with :class:`CacheBlock`).
    """

    __slots__ = ("_store", "_row", "way", "tech", "cset")

    def __init__(self, store: "SoATagStore", row: int, way: int, tech: str) -> None:
        self._store = store
        self._row = row
        self.way = way
        self.tech = tech
        # Owning CacheSet; assigned once at set construction, exactly
        # like CacheBlock.cset.
        self.cset: Optional[CacheSet] = None

    # ---- matrix-backed fields ----------------------------------------
    @property
    def tag(self) -> int:
        return int(self._store.tag[self._row, self.way])

    @tag.setter
    def tag(self, value: int) -> None:
        self._store.tag[self._row, self.way] = value

    @property
    def valid(self) -> bool:
        return bool(self._store.valid[self._row, self.way])

    @valid.setter
    def valid(self, value: bool) -> None:
        self._store.valid[self._row, self.way] = value

    @property
    def dirty(self) -> bool:
        return bool(self._store.dirty[self._row, self.way])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._store.dirty[self._row, self.way] = value

    @property
    def loop_bit(self) -> bool:
        return bool(self._store.loop_bit[self._row, self.way])

    @loop_bit.setter
    def loop_bit(self, value: bool) -> None:
        self._store.loop_bit[self._row, self.way] = value

    @property
    def last_access(self) -> int:
        return int(self._store.last_access[self._row, self.way])

    @last_access.setter
    def last_access(self, value: int) -> None:
        self._store.last_access[self._row, self.way] = value

    @property
    def insert_seq(self) -> int:
        return int(self._store.insert_seq[self._row, self.way])

    @insert_seq.setter
    def insert_seq(self, value: int) -> None:
        self._store.insert_seq[self._row, self.way] = value

    @property
    def rrpv(self) -> int:
        return int(self._store.rrpv[self._row, self.way])

    @rrpv.setter
    def rrpv(self, value: int) -> None:
        self._store.rrpv[self._row, self.way] = value

    @property
    def state(self) -> str:
        return CODE_STATES[self._store.state[self._row, self.way]]

    @state.setter
    def state(self, value: str) -> None:
        self._store.state[self._row, self.way] = STATE_CODES[value]

    # ---- protocol methods (semantics identical to CacheBlock) --------
    def reset(self) -> None:
        """Invalidate the block, clearing all metadata except geometry."""
        store, row, way = self._store, self._row, self.way
        store.tag[row, way] = -1
        store.valid[row, way] = False
        store.dirty[row, way] = False
        store.loop_bit[row, way] = False
        store.last_access[row, way] = 0
        store.insert_seq[row, way] = 0
        store.rrpv[row, way] = 0
        store.state[row, way] = 0

    def fill(self, tag: int, dirty: bool, loop_bit: bool, now: int) -> None:
        """Install a new line in this way."""
        store, row, way = self._store, self._row, self.way
        store.tag[row, way] = tag
        store.valid[row, way] = True
        store.dirty[row, way] = dirty
        store.loop_bit[row, way] = loop_bit
        store.last_access[row, way] = now
        store.insert_seq[row, way] = now
        store.rrpv[row, way] = 0
        store.state[row, way] = 0

    def set_loop_bit(self, value: bool) -> None:
        """Write the loop-bit, keeping the set's loop counter exact."""
        if self.valid and value != self.loop_bit:
            self.cset.loop_count += 1 if value else -1
        self.loop_bit = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c for c, on in (("V", self.valid), ("D", self.dirty), ("L", self.loop_bit)) if on
        )
        return (
            f"SoABlockView(set={self._row}, way={self.way}, tag={self.tag:#x}, "
            f"flags={flags or '-'}, state={self.state}, tech={self.tech})"
        )


class SoATagStore(TagStore):
    """Struct-of-arrays layout with vectorized queries and batch I/O."""

    kind = "soa"
    supports_batch = True

    def __init__(self, num_sets: int, assoc: int, way_techs: Sequence[str]) -> None:
        super().__init__(num_sets, assoc, way_techs)
        shape = (num_sets, assoc)
        self.tag = np.full(shape, -1, dtype=np.int64)
        self.valid = np.zeros(shape, dtype=bool)
        self.dirty = np.zeros(shape, dtype=bool)
        self.loop_bit = np.zeros(shape, dtype=bool)
        self.last_access = np.zeros(shape, dtype=np.int64)
        self.insert_seq = np.zeros(shape, dtype=np.int64)
        self.rrpv = np.zeros(shape, dtype=np.int64)
        self.state = np.zeros(shape, dtype=np.int8)
        self.sets = [
            CacheSet(
                i,
                assoc,
                self.way_techs,
                blocks=[SoABlockView(self, i, w, self.way_techs[w]) for w in range(assoc)],
            )
            for i in range(num_sets)
        ]

    # ------------------------------------------------------------------
    # vectorized bulk queries
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return int(self.valid.sum())

    def loop_block_occupancy(self) -> Tuple[int, int]:
        """(valid, valid-with-loop-bit) via two whole-matrix reductions."""
        return int(self.valid.sum()), int((self.valid & self.loop_bit).sum())

    def find_ways(self, set_indices: np.ndarray, tags: np.ndarray) -> np.ndarray:
        """Vectorized tag search: the way holding each tag, or -1.

        ``set_indices`` and ``tags`` are parallel 1-D int arrays; one
        matrix gather + compare answers every probe at once.
        """
        rows_valid = self.valid[set_indices]
        match = rows_valid & (self.tag[set_indices] == np.asarray(tags)[:, None])
        ways = match.argmax(axis=1)
        return np.where(match.any(axis=1), ways, -1)

    def lru_victims(self, set_indices: np.ndarray) -> np.ndarray:
        """Vectorized LRU victim ways (first invalid, else oldest stamp).

        Ties break to the lowest way, matching
        :class:`~repro.cache.replacement.LRUPolicy`'s first-win scan.
        """
        rows_valid = self.valid[set_indices]
        has_invalid = ~rows_valid.all(axis=1)
        first_invalid = (~rows_valid).argmax(axis=1)
        stamps = np.where(
            rows_valid, self.last_access[set_indices], np.iinfo(np.int64).max
        )
        return np.where(has_invalid, first_invalid, stamps.argmin(axis=1))

    # ------------------------------------------------------------------
    # checkout / checkin for the batch kernel
    # ------------------------------------------------------------------
    def checkout(self) -> dict:
        """Flatten the matrices into the batch kernel's working state.

        Returns flat row-major Python lists (slot = set * assoc + way)
        plus per-set tag->slot dicts and the loop counters. While the
        state is checked out the matrices are stale; nothing else may
        read the store until :meth:`checkin`. The ``state`` matrix is
        deliberately absent: the batch kernel only runs non-coherent
        configurations, where every state stays ``"-"``.
        """
        assoc = self.assoc
        maps = []
        for s in self.sets:
            base = s.index * assoc
            maps.append({t: base + b.way for t, b in s.tag_map.items()})
        return {
            "tag": self.tag.ravel().tolist(),
            "valid": self.valid.ravel().tolist(),
            "dirty": self.dirty.ravel().tolist(),
            "loop": self.loop_bit.ravel().tolist(),
            "last": self.last_access.ravel().tolist(),
            "iseq": self.insert_seq.ravel().tolist(),
            "rrpv": self.rrpv.ravel().tolist(),
            "maps": maps,
            "loop_counts": [s.loop_count for s in self.sets],
        }

    def checkin(self, state: dict) -> None:
        """Bulk-write a checked-out working state back into the matrices
        and rebuild the per-set tag maps / loop counters."""
        shape = (self.num_sets, self.assoc)
        self.tag[:] = np.asarray(state["tag"], dtype=np.int64).reshape(shape)
        self.valid[:] = np.asarray(state["valid"], dtype=bool).reshape(shape)
        self.dirty[:] = np.asarray(state["dirty"], dtype=bool).reshape(shape)
        self.loop_bit[:] = np.asarray(state["loop"], dtype=bool).reshape(shape)
        self.last_access[:] = np.asarray(state["last"], dtype=np.int64).reshape(shape)
        self.insert_seq[:] = np.asarray(state["iseq"], dtype=np.int64).reshape(shape)
        self.rrpv[:] = np.asarray(state["rrpv"], dtype=np.int64).reshape(shape)
        assoc = self.assoc
        for s, slot_map, loops in zip(self.sets, state["maps"], state["loop_counts"]):
            base = s.index * assoc
            s.tag_map = {t: s.blocks[slot - base] for t, slot in slot_map.items()}
            s.loop_count = loops
