"""Batched probe-free reference loop over checked-out SoA tag stores.

The generic access path (:meth:`CacheHierarchy.access`) walks ~35
Python calls per reference: clean layering, but ~9 microseconds per
access. This module is the same semantics with the layers flattened
into one loop, for the configurations where nothing can observe the
difference:

- every cache uses the ``"soa"`` tag store (checkout/checkin),
- the probe bus is empty (no instrumentation to dispatch),
- coherence is off (no MOESI states, no snoops, no peer supplies),
- the inclusion policy is one the kernel inlines: non-inclusive,
  exclusive, or LAP over an LRU baseline (all three replacement modes).

Everything else falls back to the generic loop, which remains
bit-identical across backends by construction (same code, same block
protocol). The kernel is *required* to be bit-identical too — same
stats, same timing floats, same final tag-array state — and the parity
suite (``tests/test_tagstore_parity.py``) holds it to that.

How it stays exact: the per-access op sequence below is a line-by-line
transcription of ``hierarchy.access`` + the policy flows, preserving

- tick sequencing (a cache's ``_tick`` advances only on lookup-hit,
  insert, fill, and update — in the same order);
- stat increment sites (every counter the generic path touches, and
  only those);
- Fig. 15 write-class categories including the insert-or-update merge
  cases;
- timing-model float arithmetic (same expressions in the same order,
  so bank-contention floats match bit-for-bit);
- per-set loop-counter and tag-map discipline.

The speed comes from four reductions of per-reference Python work:

- **flat maps** — tag lookups key one dict per cache on the *block
  number* (``addr >> offset_bits``). Because ``tag_shift = offset_bits
  + index_bits``, ``(set, tag) <-> block`` is a bijection at every
  level, so one ``dict.get`` replaces the per-set two-level lookup and
  the same block number keys L1, L2, and LLC alike. Per-set maps are
  rebuilt once at checkin.
- **one interleaved stream** — per batch, addresses are sliced with a
  handful of whole-matrix numpy ops, transposed into reference order
  (core-minor, matching the generic round-robin), and iterated with a
  single ``zip``; the scalar loop never double-indexes ``[core][i]``.
- **derived stats** — counters that move in lockstep with a path
  (lookups, hit/read splits, fill writes at L1/L2, demand counts) are
  reconstructed after the run from the few data-dependent ones, so the
  hot loop only counts what it must.
- **precomputed L1 stamps** — the L1 tick advances exactly once per
  reference (hit or fill), so its stamps are a numpy arange per batch.

Set-dueling (LAP) is inlined the same way: static leader roles are
precomputed per set, and the tick/record/decide state machine runs on
local ints that are written back to the controller at the end.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.lap import LAPPolicy
from ..inclusion.traditional import ExclusivePolicy, NonInclusivePolicy
from ..obs.spans import start_span

MODE_NONI = 0
MODE_EX = 1
MODE_LAP = 2

_LAP_REPL = {"lru": 0, "loop": 1, "duel": 2}

#: loop-aware victim masking sentinel — larger than any tick stamp.
_BIG = 1 << 62


def kernel_mode(policy) -> Optional[int]:
    """The kernel's inlined flow for ``policy``, or None if unsupported.

    Exact-type checks on purpose: subclasses (dead-write bypass,
    Lhybrid) override hooks the kernel does not call.
    """
    t = type(policy)
    if t is NonInclusivePolicy:
        return MODE_NONI
    if t is ExclusivePolicy:
        return MODE_EX
    if t is LAPPolicy and policy.baseline == "lru":
        return MODE_LAP
    return None


def eligible(hierarchy) -> bool:
    """Whether the batched kernel can run this hierarchy verbatim."""
    return (
        hierarchy.llc.store.supports_batch
        and all(c.store.supports_batch for c in hierarchy.l1s)
        and all(c.store.supports_batch for c in hierarchy.l2s)
        and hierarchy.coherence is None
        and not hierarchy.probe_bus.probes
        and kernel_mode(hierarchy.policy) is not None
    )


def _flatten_maps(per_set_maps, idx_bits) -> dict:
    """Per-set ``{tag: slot}`` dicts -> one ``{block: slot}`` dict."""
    flat = {}
    for si, m in enumerate(per_set_maps):
        for t, slot in m.items():
            flat[(t << idx_bits) | si] = slot
    return flat


def _unflatten_maps(flat, num_sets, mask, idx_bits) -> list:
    """Inverse of :func:`_flatten_maps`, for checkin."""
    maps = [{} for _ in range(num_sets)]
    for key, slot in flat.items():
        maps[key & mask][key >> idx_bits] = slot
    return maps


def _blk_shadow(flat, nslots) -> list:
    """Slot -> block-number shadow, valid slots only.

    Lets evictions read the victim's flat-map key directly instead of
    re-deriving ``(tag << idx_bits) | set`` on every replacement. Only
    consulted while the slot is valid, so stale entries after an
    invalidation are harmless.
    """
    bl = [0] * nslots
    for b, slot in flat.items():
        bl[slot] = b
    return bl


def run_kernel(sim, refs_per_core: int, batch: int) -> List[float]:
    """Drive ``sim``'s hierarchy through the flattened loop.

    Mirrors :meth:`Simulator.run`'s batch structure (same generator
    calls in the same order) and returns the per-core instruction
    counts; the caller finishes and collects as usual.
    """
    h = sim.hierarchy
    policy = h.policy
    mode = kernel_mode(policy)
    if mode is None or not eligible(h):  # pragma: no cover - guarded by caller
        raise RuntimeError("batch kernel invoked on an ineligible hierarchy")

    timing = h.timing
    gens = sim.workload.generators
    ncores = len(gens)
    llc = h.llc

    # ---- address-slicing constants -----------------------------------
    off = llc._offset_bits
    l1_mask = h.l1s[0]._index_mask
    l1_idx_bits = h.l1s[0]._index_bits
    l2_mask = h.l2s[0]._index_mask
    l2_idx_bits = h.l2s[0]._index_bits
    llc_mask = llc._index_mask
    llc_idx_bits = llc._index_bits
    bank_mask = llc._bank_mask
    l1_assoc = h.l1s[0].assoc
    l2_assoc = h.l2s[0].assoc
    llc_assoc = llc.assoc
    # Unrolled victim scans for the stock associativities (first-win
    # strict-< keeps exactly the ``index(min(...))`` tie-breaking).
    u4 = l1_assoc == 4
    u8 = l2_assoc == 8

    # ---- timing constants (same expressions as TimingModel) ----------
    l2_lat = timing.l2_latency
    l2_lat_f = float(l2_lat)
    mem_stall = (timing.l2_latency + timing.llc_read_latency + timing.mem_latency) * (
        timing.mlp_exposure
    )
    cc = timing.core_cycles  # mutated in place
    busy = timing.banks.busy_until  # mutated in place
    read_stall = 0.0
    write_stall = 0.0

    # Per-LLC-slot service latencies / technology (hybrid-aware).
    slot_techs = llc.store.way_techs * llc.num_sets
    r_serv = [
        timing.sram_read_latency if t == "sram" else timing.llc_read_latency
        for t in slot_techs
    ]
    w_serv = [
        timing.sram_write_latency if t == "sram" else timing.llc_write_latency
        for t in slot_techs
    ]
    slot_sram = [t == "sram" for t in slot_techs]
    # _finish_insert charges the write against the landed region for
    # hybrid LLCs and against llc.tech for homogeneous ones — same
    # value either way here, so slot tech serves both.

    # ---- checkout ----------------------------------------------------
    # Explicit-finish span handles (not ``with`` blocks): the three
    # kernel phases are flat several-hundred-line regions and spans are
    # per-phase, never per-reference, so the hot loop stays untouched.
    checkout_span = start_span("kernel.checkout", ncores=ncores)
    l1_st = [c.store.checkout() for c in h.l1s]
    l2_st = [c.store.checkout() for c in h.l2s]
    ll_st = llc.store.checkout()

    l1_tag = [s["tag"] for s in l1_st]
    l1_val = [s["valid"] for s in l1_st]
    l1_dir = [s["dirty"] for s in l1_st]
    l1_last = [s["last"] for s in l1_st]
    l1_iseq = [s["iseq"] for s in l1_st]
    l2_tag = [s["tag"] for s in l2_st]
    l2_val = [s["valid"] for s in l2_st]
    l2_dir = [s["dirty"] for s in l2_st]
    l2_loop = [s["loop"] for s in l2_st]
    l2_last = [s["last"] for s in l2_st]
    l2_iseq = [s["iseq"] for s in l2_st]
    l2_lc = [s["loop_counts"] for s in l2_st]
    ll_tag = ll_st["tag"]
    ll_val = ll_st["valid"]
    ll_dir = ll_st["dirty"]
    ll_loop = ll_st["loop"]
    ll_last = ll_st["last"]
    ll_iseq = ll_st["iseq"]
    ll_lc = ll_st["loop_counts"]

    # Flat block-number-keyed maps (see module docstring).
    m1_flat = [_flatten_maps(s["maps"], l1_idx_bits) for s in l1_st]
    m2_flat = [_flatten_maps(s["maps"], l2_idx_bits) for s in l2_st]
    ll_flat = _flatten_maps(ll_st["maps"], llc_idx_bits)
    l1_bn = [_blk_shadow(m1_flat[c], len(l1_tag[c])) for c in range(ncores)]
    l2_bn = [_blk_shadow(m2_flat[c], len(l2_tag[c])) for c in range(ncores)]
    ll_bn = _blk_shadow(ll_flat, len(ll_tag))

    l1_tick = [c._tick for c in h.l1s]
    l2_tick = [c._tick for c in h.l2s]
    ll_tick = llc._tick
    checkout_span.finish()

    # ---- local stat accumulators (data-dependent only; the rest is
    # derived after the run) -------------------------------------------
    z = [0] * ncores
    l1_mis, wh1, l1_ev, l1_dev, l1_inv = list(z), list(z), list(z), list(z), list(z)
    l2_mis, l2_ev, l2_dev = list(z), list(z), list(z)
    ll_mis = ll_tp = 0
    ll_drs = ll_drt = ll_dws = ll_dwt = 0
    ll_ins = ll_ev = ll_dev = ll_inv = 0
    ll_fillw = ll_cleanw = ll_dirtyw = ll_updw = ll_hitinv = 0
    accesses = stores = 0
    l2_cv = l2_dv = 0
    mem_writes = 0

    # ---- policy selection & inlined set-dueling ----------------------
    noni = mode == MODE_NONI
    exm = mode == MODE_EX
    lap = mode == MODE_LAP
    lap_repl = _LAP_REPL[policy.replacement_mode] if lap else 0
    lap_loop_mode = lap and lap_repl == 1
    lap_duel_mode = lap and lap_repl == 2
    dueling = policy.dueling if lap else None
    duel_on = dueling is not None
    if duel_on:
        roles = [dueling.role(s) for s in range(llc.num_sets)]
        duel_degen = dueling.degenerate
        duel_interval = dueling.interval
        duel_acc = dueling._accesses
        duel_winner = dueling.winner
        winner_fn = dueling.winner_fn
        la_miss = dueling.stats.leader_a_misses
        lb_miss = dueling.stats.leader_b_misses
        duel_wa = dueling._write_a
        duel_wb = dueling._write_b
        dec_a = dueling.stats.decisions_a
        dec_b = dueling.stats.decisions_b
        duel_ivals = dueling.stats.intervals
    else:
        roles = []
        duel_degen = True
        duel_interval = duel_acc = duel_winner = 0
        winner_fn = None
        la_miss = lb_miss = duel_wa = duel_wb = 0
        dec_a = dec_b = duel_ivals = 0

    # The LLC insert and update flows are inlined at their call sites
    # below (no closures: keeping every hot variable a plain local is
    # measurably faster than closure-cell access, and the insert runs
    # up to once per reference on miss-heavy workloads). Victim scans
    # use C-level min/index: invalid ways carry stamp 0 (reset zeroes
    # it) while valid ways carry >= 1 (ticks pre-increment), so the
    # minimum stamp is the first invalid way when one exists and the
    # oldest line otherwise, with ties breaking to the lowest way —
    # exactly LRUPolicy's first-win scan.

    # Per-core objects repeated in reference order, so the scalar loop
    # unpacks them from one zip instead of double-indexing.
    core_pat = list(range(ncores))
    m1_pat = [m1_flat[c] for c in core_pat]
    m2_pat = [m2_flat[c] for c in core_pat]
    last1_pat = [l1_last[c] for c in core_pat]
    dir1_pat = [l1_dir[c] for c in core_pat]
    # Everything else the (less frequent) L1-miss path touches, bundled
    # per core so one tuple unpack replaces ~20 ``[core]`` indexings.
    ctx_pat = [
        (
            l2_tag[c],
            l2_val[c],
            l2_last[c],
            l2_dir[c],
            l2_loop[c],
            l2_iseq[c],
            l2_lc[c],
            l2_bn[c],
            l1_tag[c],
            l1_val[c],
            l1_iseq[c],
            l1_bn[c],
        )
        for c in core_pat
    ]

    core_instr = [0.0] * ncores
    loop_span = start_span(
        "kernel.batch_loop", refs_per_core=refs_per_core, batch=batch
    )
    remaining = refs_per_core
    while remaining > 0:
        take = min(batch, remaining)
        batches = [gen.batch(take) for gen in gens]
        # Vectorized per-batch slicing: stack to (ncores, take), one
        # vector op per field, transpose into reference order (i-major,
        # core-minor — the generic round-robin), then plain lists.
        addrs = np.stack([b[0] for b in batches]).astype(np.int64)
        writes = np.stack([b[1] for b in batches])
        blk2 = addrs >> off
        blk_f = blk2.T.ravel().tolist()
        wr_f = writes.T.ravel().tolist()
        accesses += take * ncores
        stores += int(writes.sum())
        # L1 tick stamps: exactly one advance per reference.
        tk2 = (
            np.asarray(l1_tick, dtype=np.int64)[:, None]
            + np.arange(1, take + 1, dtype=np.int64)[None, :]
        )
        tk_f = tk2.T.ravel().tolist()
        for c in core_pat:
            l1_tick[c] += take

        cores_f = core_pat * take
        m1_f = m1_pat * take
        m2_f = m2_pat * take
        last1_f = last1_pat * take
        dir1_f = dir1_pat * take
        ctx_f = ctx_pat * take

        for core, w, blk, tk, m1, m2, last1, dir1, ctx in zip(
            cores_f, wr_f, blk_f, tk_f, m1_f, m2_f, last1_f, dir1_f, ctx_f
        ):
            # ---- L1 lookup --------------------------------------
            slot = m1.get(blk)
            if slot is not None:
                last1[slot] = tk
                if w:
                    wh1[core] += 1
                    dir1[slot] = True
                    # propagate_store: L2 copy exists (L1 ⊆ L2)
                    ls = m2[blk]
                    l2_dir[core][ls] = True
                    if l2_loop[core][ls]:
                        l2_lc[core][blk & l2_mask] -= 1
                        l2_loop[core][ls] = False
                continue
            l1_mis[core] += 1
            tags2, val2, last2, dir2, loop2, iseq2, lc2, bn2, tags1, v1, iseq1, bn1 = ctx
            # ---- L2 lookup (reads only; stores dirty via
            # propagation) -----------------------------------------
            ls = m2.get(blk)
            if ls is not None:
                t2k = l2_tick[core] + 1
                l2_tick[core] = t2k
                last2[ls] = t2k
                cc[core] += l2_lat_f
            else:
                l2_mis[core] += 1
                # ---- L2 miss: inlined policy.llc_access ---------
                # ``ck`` shadows cc[core] for this whole demand block
                # (same float ops in the same order, one store at the
                # end); posted-write charges read it at the same points
                # the generic path reads cc[core].
                ck = cc[core]
                si = blk & llc_mask
                bk = blk & bank_mask
                if duel_on and not duel_degen:
                    # dueling.tick()
                    duel_acc += 1
                    if duel_acc >= duel_interval:
                        duel_acc = 0
                        duel_winner = winner_fn(la_miss, duel_wa, lb_miss, duel_wb)
                        if duel_winner == 0:
                            dec_a += 1
                        else:
                            dec_b += 1
                        duel_ivals += 1
                        la_miss //= 2
                        lb_miss //= 2
                        duel_wa //= 2
                        duel_wb //= 2
                s = ll_flat.get(blk)
                out_dirty = False
                if s is None:
                    ll_mis += 1
                    hit = False
                    if duel_on:
                        # dueling.record_miss(si)
                        r = roles[si]
                        if r == 0:
                            la_miss += 1
                        elif r == 1:
                            lb_miss += 1
                    if noni:
                        # Fig. 1b: the miss fills the LLC too. The
                        # just-missed line cannot be present, so
                        # insert_or_update is a straight insert
                        # (plain-LRU scan, clean, loop bit off).
                        ll_tick += 1
                        base = si * llc_assoc
                        seg = ll_last[base : base + llc_assoc]
                        s = base + seg.index(min(seg))
                        if ll_val[s]:
                            ll_ev += 1
                            if ll_dir[s]:
                                ll_dev += 1
                                mem_writes += 1
                            del ll_flat[ll_bn[s]]
                            if ll_loop[s]:
                                ll_lc[si] -= 1
                        ll_tag[s] = blk >> llc_idx_bits
                        ll_val[s] = True
                        ll_dir[s] = False
                        ll_loop[s] = False
                        ll_last[s] = ll_tick
                        ll_iseq[s] = ll_tick
                        ll_flat[blk] = s
                        ll_bn[s] = blk
                        ll_ins += 1
                        ll_tp += 1
                        if slot_sram[s]:
                            ll_dws += 1
                        else:
                            ll_dwt += 1
                        ll_fillw += 1
                        wnow = ck
                        free = busy[bk]
                        st = free - wnow
                        if st < 0.0:
                            st = 0.0
                        busy[bk] = wnow + st + w_serv[s]
                        write_stall += st
                else:
                    hit = True
                    if slot_sram[s]:
                        ll_drs += 1
                    else:
                        ll_drt += 1
                    ll_tick += 1
                    ll_last[s] = ll_tick
                    # timing.llc_read
                    rnow = ck + l2_lat
                    serv = r_serv[s]
                    free = busy[bk]
                    st = free - rnow
                    if st < 0.0:
                        st = 0.0
                    busy[bk] = rnow + st + serv
                    read_stall += st
                    ck += l2_lat + st + serv
                    if exm:
                        # invalidate-on-hit; dirtiness moves up
                        out_dirty = ll_dir[s]
                        ll_tp += 1
                        del ll_flat[blk]
                        if ll_loop[s]:
                            ll_lc[si] -= 1
                        ll_tag[s] = -1
                        ll_val[s] = False
                        ll_dir[s] = False
                        ll_loop[s] = False
                        ll_last[s] = 0
                        ll_iseq[s] = 0
                        ll_inv += 1
                        ll_hitinv += 1
                if not hit:
                    ck += mem_stall
                # ---- _fill_l2 -----------------------------------
                s2 = blk & l2_mask
                fl_loop = lap and hit  # l2_fill_loop_bit
                t2k = l2_tick[core] + 1
                l2_tick[core] = t2k
                base2 = s2 * l2_assoc
                if u8:
                    vs = base2
                    m = last2[vs]
                    j = base2 + 1
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 2
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 3
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 4
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 5
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 6
                    v = last2[j]
                    if v < m: m = v; vs = j
                    j = base2 + 7
                    v = last2[j]
                    if v < m: vs = j
                else:
                    seg = last2[base2 : base2 + l2_assoc]
                    vs = base2 + seg.index(min(seg))
                if val2[vs]:
                    ev_blk = bn2[vs]
                    ev_dirty = dir2[vs]
                    ev_loop = loop2[vs]
                    l2_ev[core] += 1
                    if ev_dirty:
                        l2_dev[core] += 1
                    del m2[ev_blk]
                    if ev_loop:
                        lc2[s2] -= 1
                else:
                    ev_blk = -1
                tags2[vs] = blk >> l2_idx_bits
                val2[vs] = True
                dir2[vs] = out_dirty
                loop2[vs] = fl_loop
                last2[vs] = t2k
                iseq2[vs] = t2k
                if fl_loop:
                    lc2[s2] += 1
                m2[blk] = vs
                bn2[vs] = blk
                ls = vs
                if ev_blk != -1:
                    # ---- _handle_l2_victim ----------------------
                    # L1 ⊆ L2: kill the upper copy
                    eslot = m1.pop(ev_blk, None)
                    if eslot is not None:
                        v1[eslot] = False
                        tags1[eslot] = -1
                        dir1[eslot] = False
                        last1[eslot] = 0
                        iseq1[eslot] = 0
                        l1_inv[core] += 1
                    if ev_dirty:
                        l2_dv += 1
                    else:
                        l2_cv += 1
                    # ---- policy.l2_victim -----------------------
                    # One unified flow for the three modes. noni drops
                    # clean victims; every other (mode, dirty, present)
                    # combination updates the LLC copy or inserts:
                    #   present+dirty        -> update(d=True) + updw,
                    #     loop bit: ex keeps ev_loop, noni/LAP clear
                    #   present+clean (ex)   -> update(d=False)+cleanw,
                    #     loop bit := ev_loop
                    #   present+clean (LAP)  -> Fig. 10b loop-bit
                    #     refresh only, no write
                    #   absent               -> insert(d=ev_dirty),
                    #     loop bit: ex keeps, LAP clean keeps,
                    #     dirty-merge clears; dirtyw/cleanw by d
                    if ev_dirty or not noni:
                        esi = ev_blk & llc_mask
                        ebk = ev_blk & bank_mask
                        if lap:
                            ll_tp += 1  # llc.probe
                        es = ll_flat.get(ev_blk)
                        if es is not None:
                            if ev_dirty or exm:
                                # inline Cache.update + posted write
                                if ev_dirty:
                                    ll_dir[es] = True
                                ll_tick += 1
                                ll_last[es] = ll_tick
                                ll_tp += 1
                                if slot_sram[es]:
                                    ll_dws += 1
                                else:
                                    ll_dwt += 1
                                wnow = ck
                                free = busy[ebk]
                                st = free - wnow
                                if st < 0.0:
                                    st = 0.0
                                busy[ebk] = wnow + st + w_serv[es]
                                write_stall += st
                                if ev_dirty:
                                    ll_updw += 1
                                else:
                                    ll_cleanw += 1
                            # loop-bit reconciliation on the copy
                            nl = ev_loop if (exm or not ev_dirty) else False
                            if nl != ll_loop[es]:
                                ll_lc[esi] += 1 if nl else -1
                                ll_loop[es] = nl
                        else:
                            # inline _place_and_insert + _finish_insert
                            lb = ev_loop if (exm or not ev_dirty) else False
                            if lap_loop_mode:
                                loop_scan = True
                            elif lap_duel_mode:
                                r = roles[esi]
                                loop_scan = (duel_winner if r is None else r) == 0
                            else:
                                loop_scan = False
                            ll_tick += 1
                            base = esi * llc_assoc
                            seg = ll_last[base : base + llc_assoc]
                            s = base + seg.index(min(seg))
                            if loop_scan and ll_loop[s]:
                                # The global-LRU winner is loop-marked:
                                # redo the scan with loop-marked ways
                                # masked to a sentinel. (When the plain
                                # winner is unmarked it already IS the
                                # min over unmarked ways, so this path
                                # only runs when it would differ.)
                                # Invalid ways have the bit clear, so
                                # first-invalid still wins; all-loop
                                # sets keep the plain-LRU winner.
                                masked = [
                                    _BIG if lbit else la
                                    for la, lbit in zip(
                                        seg, ll_loop[base : base + llc_assoc]
                                    )
                                ]
                                m = min(masked)
                                if m < _BIG:
                                    s = base + masked.index(m)
                            if ll_val[s]:
                                ll_ev += 1
                                if ll_dir[s]:
                                    ll_dev += 1
                                    mem_writes += 1
                                del ll_flat[ll_bn[s]]
                                if ll_loop[s]:
                                    ll_lc[esi] -= 1
                            ll_tag[s] = ev_blk >> llc_idx_bits
                            ll_val[s] = True
                            ll_dir[s] = ev_dirty
                            ll_loop[s] = lb
                            ll_last[s] = ll_tick
                            ll_iseq[s] = ll_tick
                            if lb:
                                ll_lc[esi] += 1
                            ll_flat[ev_blk] = s
                            ll_bn[s] = ev_blk
                            ll_ins += 1
                            ll_tp += 1
                            if slot_sram[s]:
                                ll_dws += 1
                            else:
                                ll_dwt += 1
                            if ev_dirty:
                                ll_dirtyw += 1
                            else:
                                ll_cleanw += 1
                            wnow = ck
                            free = busy[ebk]
                            st = free - wnow
                            if st < 0.0:
                                st = 0.0
                            busy[ebk] = wnow + st + w_serv[s]
                            write_stall += st
                cc[core] = ck
            # ---- l1.fill(addr, is_write) ------------------------
            s1 = blk & l1_mask
            base1 = s1 * l1_assoc
            if u4:
                vs = base1
                m = last1[vs]
                j = base1 + 1
                v = last1[j]
                if v < m: m = v; vs = j
                j = base1 + 2
                v = last1[j]
                if v < m: m = v; vs = j
                j = base1 + 3
                v = last1[j]
                if v < m: vs = j
            else:
                seg = last1[base1 : base1 + l1_assoc]
                vs = base1 + seg.index(min(seg))
            if v1[vs]:
                l1_ev[core] += 1
                if dir1[vs]:
                    l1_dev[core] += 1
                del m1[bn1[vs]]
            tags1[vs] = blk >> l1_idx_bits
            v1[vs] = True
            dir1[vs] = w
            last1[vs] = tk
            iseq1[vs] = tk
            m1[blk] = vs
            bn1[vs] = blk
            if w:
                # propagate_store into the (just ensured) L2 copy:
                # ``ls`` carries the slot from the hit/fill above.
                dir2[ls] = True
                if loop2[ls]:
                    lc2[blk & l2_mask] -= 1
                    loop2[ls] = False

        for core, gen in enumerate(gens):
            instrs = take * gen.instr_per_ref
            core_instr[core] += instrs
            cc[core] += instrs
        remaining -= take
    loop_span.finish()

    # ---- checkin: maps, state, ticks, stats --------------------------
    checkin_span = start_span("kernel.checkin", ncores=ncores)
    for core in range(ncores):
        l1_st[core]["maps"] = _unflatten_maps(
            m1_flat[core], h.l1s[core].num_sets, l1_mask, l1_idx_bits
        )
        l2_st[core]["maps"] = _unflatten_maps(
            m2_flat[core], h.l2s[core].num_sets, l2_mask, l2_idx_bits
        )
        h.l1s[core].store.checkin(l1_st[core])
        h.l2s[core].store.checkin(l2_st[core])
        h.l1s[core]._tick = l1_tick[core]
        h.l2s[core]._tick = l2_tick[core]
    ll_st["maps"] = _unflatten_maps(ll_flat, llc.num_sets, llc_mask, llc_idx_bits)
    llc.store.checkin(ll_st)
    llc._tick = ll_tick

    if duel_on:
        dueling._accesses = duel_acc
        dueling.winner = duel_winner
        dueling._write_a = duel_wa
        dueling._write_b = duel_wb
        dueling.stats.leader_a_misses = la_miss
        dueling.stats.leader_b_misses = lb_miss
        dueling.stats.decisions_a = dec_a
        dueling.stats.decisions_b = dec_b
        dueling.stats.intervals = duel_ivals

    # ---- derived + accumulated stat flush ----------------------------
    # Lockstep identities: every reference does one L1 lookup and, on a
    # miss, exactly one L1 fill-insert; every L1 miss does one L2
    # lookup and every L2 miss one fill-insert; every L2 eviction runs
    # one upper-level probe; every L2 miss does one LLC lookup.
    refs = refs_per_core
    l1_hits_h = l2_hits_h = 0
    for core in range(ncores):
        mis1 = l1_mis[core]
        hit1 = refs - mis1
        wh = wh1[core]
        l1_hits_h += hit1
        s = h.l1s[core].stats
        s.lookups += refs
        s.hits += hit1
        s.misses += mis1
        s.tag_probes += refs + mis1 + l2_ev[core]
        s.data_reads_sram += hit1 - wh
        s.data_writes_sram += wh + mis1
        s.insertions += mis1
        s.evictions += l1_ev[core]
        s.dirty_evictions += l1_dev[core]
        s.invalidations += l1_inv[core]
        mis2 = l2_mis[core]
        hit2 = mis1 - mis2
        l2_hits_h += hit2
        s = h.l2s[core].stats
        s.lookups += mis1
        s.hits += hit2
        s.misses += mis2
        s.tag_probes += mis1 + mis2
        s.data_reads_sram += hit2
        s.data_writes_sram += mis2
        s.insertions += mis2
        s.evictions += l2_ev[core]
        s.dirty_evictions += l2_dev[core]
    ll_lkp = sum(l2_mis)
    s = llc.stats
    s.lookups += ll_lkp
    s.hits += ll_lkp - ll_mis
    s.misses += ll_mis
    s.tag_probes += ll_lkp + ll_tp
    s.data_reads_sram += ll_drs
    s.data_reads_stt += ll_drt
    s.data_writes_sram += ll_dws
    s.data_writes_stt += ll_dwt
    s.insertions += ll_ins
    s.evictions += ll_ev
    s.dirty_evictions += ll_dev
    s.invalidations += ll_inv
    s.fill_writes += ll_fillw
    s.clean_victim_writes += ll_cleanw
    s.dirty_victim_writes += ll_dirtyw
    s.update_writes += ll_updw
    s.hit_invalidations += ll_hitinv

    hs = h.stats
    hs.accesses += accesses
    hs.stores += stores
    hs.l1_hits += l1_hits_h
    hs.l2_hits += l2_hits_h
    hs.llc_demand_accesses += ll_lkp
    hs.llc_demand_hits += ll_lkp - ll_mis
    hs.l2_clean_victims += l2_cv
    hs.l2_dirty_victims += l2_dv
    hs.mem_reads += ll_mis
    hs.mem_writes += mem_writes

    timing.banks.read_stall_cycles += read_stall
    timing.banks.write_stall_cycles += write_stall
    checkin_span.set(accesses=accesses)
    checkin_span.finish()
    return core_instr
