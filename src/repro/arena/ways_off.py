"""Way-based LLC power-down: trade capacity for leakage energy.

Mittal, "A Cache Energy Optimization Technique for STT-RAM Last Level
Caches" (arXiv 1312.2207) reconfigures the LLC at way granularity,
power-gating ways whose capacity the workload does not earn and
crediting the saved leakage against any extra misses. This module is
the static end of that spectrum: a fixed fraction of every set's ways
is powered off for the whole run, the data flow is otherwise the
non-inclusive baseline, and the energy model scales LLC static energy
by the active-way fraction (``llc_active_fraction``) so the reported
EPI carries the leakage saving *and* the cost of the extra misses.

Mechanically the gating lives in victim selection: the policy pins a
:class:`WayGatedReplacement` wrapper that only ever considers the
first ``active_ways`` ways of each set, so powered-off ways are never
filled and hold no lines — the LLC simply behaves as a
``active_ways``-way cache of the same set count. On a hybrid LLC the
gated ways are the trailing (STT-RAM) ways, matching the paper's
leakage-dominated target arrays.

Every invariant and differential law of the non-inclusive baseline
applies unchanged; the energy delta is visible via ``extra_stats()``
(``llc_ways_off``, ``llc_active_fraction``) and in the scaled
``static_j`` of the run's :class:`~repro.energy.model.EnergyResult`.
"""

from __future__ import annotations

from typing import Sequence

from ..cache.block import CacheBlock
from ..cache.replacement import LRUPolicy, ReplacementPolicy
from ..errors import ConfigurationError
from ..inclusion.traditional import NonInclusivePolicy


class WayGatedReplacement(ReplacementPolicy):
    """Victim selection restricted to the first ``active_ways`` ways.

    Powered-off ways are simply invisible to insertion, so they are
    never filled and stay invalid for the whole run.
    """

    name = "way-gated"

    def __init__(self, inner: ReplacementPolicy, active_ways: int) -> None:
        self.inner = inner
        self.active_ways = active_ways

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        return self.inner.victim(blocks[: self.active_ways], now)

    def on_hit(self, block: CacheBlock, now: int) -> None:
        self.inner.on_hit(block, now)

    def on_insert(self, block: CacheBlock, now: int) -> None:
        self.inner.on_insert(block, now)


class WaysOffPolicy(NonInclusivePolicy):
    """Non-inclusive flow on an LLC with a fraction of its ways gated off."""

    name = "ways-off"

    def __init__(self, off_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= off_fraction < 1.0:
            raise ConfigurationError(
                f"off_fraction must be in [0, 1), got {off_fraction}"
            )
        self.off_fraction = off_fraction
        self.ways_off = 0
        self.active_ways = 0
        self._replacement: WayGatedReplacement | None = None

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        assoc = self.llc.assoc
        # Gate at most assoc-1 ways: the LLC always keeps one live way.
        self.ways_off = min(int(assoc * self.off_fraction), assoc - 1)
        self.active_ways = assoc - self.ways_off
        self._replacement = WayGatedReplacement(LRUPolicy(), self.active_ways)

    def replacement_for(self, set_index: int) -> ReplacementPolicy:
        return self._replacement

    @property
    def llc_active_fraction(self) -> float:
        """Fraction of LLC ways left powered on (scales static energy)."""
        if self.llc is None:
            return 1.0
        return self.active_ways / self.llc.assoc

    def extra_stats(self) -> dict:
        return {
            "llc_ways_off": self.ways_off,
            "llc_ways_total": self.llc.assoc if self.llc is not None else 0,
            "llc_active_fraction": self.llc_active_fraction,
        }
