"""Reuse-distance-gated copy-backs of clean victims.

Wang, Wang & Ye, "Reuse Distance-based Victim Cache Copy-back" (arXiv
2105.14442) attack the same write class LAP does — clean lines evicted
from the upper level whose re-insertion into the LLC may never pay off
— but with a different filter: copy a clean victim back only when its
*measured reuse distance* says it is likely to be referenced again
before the LLC would evict it. (ISSUE.md describes the direction as
LLC→L2; the source mechanism copies clean victims of the higher level
back into the lower-level cache, which is the natural rival to LAP's
duplicate-based clean-victim rule, and is what we implement.)

Mechanism here: the policy timestamps every LLC demand access per
block address and records the gap between consecutive accesses as that
address's observed reuse distance. On a clean L2 eviction the victim
is copied back iff its last observed distance fits within the
``window`` (default: the LLC's capacity in blocks — a line whose
reuses arrive further apart than the LLC can hold lines is unlikely to
survive to its next use). Dirty victims always insert or update: the
writeback obligation is unconditional. LLC hits keep the copy and LLC
misses never fill, exactly as in LAP — so the no-fill invariant and
the zero-``fill_writes`` differential law both apply in full.

The tracking table is bounded: once it exceeds ``4 * window`` entries
the oldest half (by last access) is pruned, keeping long traces from
accumulating per-address state without changing near-window decisions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache import EvictedLine
from ..inclusion.base import InclusionPolicy, LLCAccess


class RDCopybackPolicy(InclusionPolicy):
    """No-fill LLC with reuse-distance-triggered clean copy-backs."""

    name = "rd-copyback"
    invalidate_on_hit = False
    fill_on_miss = False
    clean_writeback = True  # selectively: reuse-distance gated
    back_invalidates = False

    def __init__(self, window: Optional[int] = None) -> None:
        super().__init__()
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._requested_window = window
        self.window = window or 0
        self._clock = 0
        self._last_seen: Dict[int, int] = {}
        self._distance: Dict[int, int] = {}
        #: clean victims copied back (predicted near reuse)
        self.copybacks = 0
        #: clean victims dropped (no or far-away observed reuse)
        self.copyback_drops = 0

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        if self._requested_window is None:
            self.window = self.llc.num_sets * self.llc.assoc
        self._clock = 0
        self._last_seen.clear()
        self._distance.clear()

    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        self._clock += 1
        last = self._last_seen.get(addr)
        if last is not None:
            self._distance[addr] = self._clock - last
        self._last_seen[addr] = self._clock
        if len(self._last_seen) > 4 * self.window:
            self._prune()
        block = self._llc_lookup(core, addr)
        if block is not None:
            return LLCAccess(hit=True, tech=block.tech)
        return LLCAccess(hit=False, tech=self.llc.tech)  # never fill

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if line.dirty:
            self.insert_or_update(
                core, line.addr, dirty=True, loop_bit=line.loop_bit,
                category="dirty_victim",
            )
            return
        distance = self._distance.get(line.addr)
        if distance is not None and distance <= self.window:
            self.copybacks += 1
            self.insert_or_update(
                core, line.addr, dirty=False, loop_bit=line.loop_bit,
                category="clean_victim",
            )
        else:
            self.copyback_drops += 1

    def _prune(self) -> None:
        """Drop the stalest half of the tracking table (bounded state)."""
        keep = sorted(self._last_seen, key=self._last_seen.__getitem__)[
            len(self._last_seen) // 2:
        ]
        self._last_seen = {a: self._last_seen[a] for a in keep}
        self._distance = {a: d for a, d in self._distance.items() if a in self._last_seen}

    def extra_stats(self) -> dict:
        return {
            "rd_copybacks": self.copybacks,
            "rd_copyback_drops": self.copyback_drops,
        }
