"""The policy registry: one catalog entry per inclusion policy.

Before the arena, the set of known policies lived in four places at
once — a factory dict in :mod:`repro.core.policies`, the 7-tuple
``DEFAULT_POLICIES`` in :mod:`repro.validate.differential`, hardcoded
``--policies`` defaults in the CLI, and the exact-type table inside
:func:`repro.kernel.batch.kernel_mode`. Adding a policy meant touching
all of them and hoping nothing drifted. The registry replaces that:
every policy is a :class:`PolicyEntry` carrying its factory *and* its
metadata — source paper + section anchor, data-flow rules, probe
events, invariant coverage, SoA-kernel eligibility, and which curated
sets (arena grid, ``repro check`` default) it belongs to. Everything
that used to hardcode a tuple now derives it from here, and the
DESIGN.md §15 catalog table is checked against these entries by a
doc-sync test.

Import discipline: this module imports only the stdlib and
:mod:`repro.errors`, and entry factories are dotted-path strings
resolved lazily at :func:`make` time — so the registry is safe to
import from anywhere (``core.policies``, ``kernel``, ``exec.jobs``)
without creating import cycles. The catalog itself lives in
:mod:`repro.arena.catalog` and is loaded on first use.
"""

from __future__ import annotations

import contextlib
import dataclasses
import difflib
import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: kernel-eligibility declarations (cross-checked against
#: :func:`repro.kernel.batch.kernel_mode` by the test suite).
BATCHED = "batched"
GENERIC = "generic"


@dataclass(frozen=True)
class PolicyEntry:
    """One registered inclusion policy and its paper-anchored metadata.

    ``factory`` is a lazy ``"module:attr"`` dotted path (or, mainly
    for tests patching entries, a callable); ``defaults`` are
    constructor kwargs merged *under* the caller's (so
    ``make("lap-lru")`` pins ``replacement_mode="lru"`` but a caller
    can still pass ``duel_interval=...``).
    """

    name: str
    factory: object
    summary: str
    #: source paper (short citation, arXiv id or venue)
    paper: str
    #: section / figure / equation anchor inside that paper
    anchor: str
    #: one-line insertion/victim/copy-back rule description
    rules: str
    aliases: Tuple[str, ...] = ()
    defaults: Tuple[Tuple[str, object], ...] = ()
    #: ``BATCHED`` when the SoA batched kernel can run this policy,
    #: ``GENERIC`` otherwise (the default for new policies)
    kernel: str = GENERIC
    #: needs a hybrid (SRAM+STT) LLC geometry to be meaningful
    hybrid_only: bool = False
    #: member of the ``repro compare --arena`` grid
    arena: bool = True
    #: member of the default ``repro check`` / differential set
    check_default: bool = False
    #: probe-bus events this policy's flows emit beyond the common set
    events: Tuple[str, ...] = ()
    #: invariants from :data:`repro.validate.invariants.INVARIANTS`
    #: that actively constrain this policy (beyond the always-on ones)
    invariants: Tuple[str, ...] = ()

    def build(self, **kwargs):
        """Instantiate the policy (lazy factory import)."""
        obj = self.factory
        if isinstance(obj, str):
            module_name, _, attr = obj.partition(":")
            obj = getattr(importlib.import_module(module_name), attr)
        merged = dict(self.defaults)
        merged.update(kwargs)
        return obj(**merged)


_ENTRIES: Dict[str, PolicyEntry] = {}
_ALIASES: Dict[str, str] = {}
_LOADED = False


def register(entry: PolicyEntry) -> PolicyEntry:
    """Add ``entry`` to the registry (name and aliases must be fresh)."""
    for name in (entry.name, *entry.aliases):
        if name in _ENTRIES or name in _ALIASES:
            raise ConfigurationError(f"policy name {name!r} registered twice")
    _ENTRIES[entry.name] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = entry.name
    return entry


def _ensure_loaded() -> None:
    """Populate the registry from :mod:`repro.arena.catalog` on first use."""
    global _LOADED
    if not _LOADED:
        _LOADED = True
        importlib.import_module("repro.arena.catalog")


def suggest(name: str) -> Optional[str]:
    """Nearest known policy name or alias, for error messages."""
    _ensure_loaded()
    matches = difflib.get_close_matches(name, [*_ENTRIES, *_ALIASES], n=1, cutoff=0.5)
    return matches[0] if matches else None


def unknown_policy(name: str) -> ConfigurationError:
    """Build the error for an unknown policy: valid names + nearest match."""
    _ensure_loaded()
    message = f"unknown policy {name!r}; valid policies: {', '.join(sorted(_ENTRIES))}"
    near = suggest(name)
    if near is not None:
        message += f" (did you mean {canonical(near)!r}?)"
    return ConfigurationError(message)


def get(name: str) -> PolicyEntry:
    """Look up an entry by canonical name or alias."""
    _ensure_loaded()
    entry = _ENTRIES.get(name)
    if entry is None:
        target = _ALIASES.get(name)
        entry = _ENTRIES.get(target) if target else None
    if entry is None:
        raise unknown_policy(name)
    return entry


def canonical(name: str) -> str:
    """Resolve an alias to its canonical registry name."""
    return get(name).name


def make(name: str, **kwargs):
    """Instantiate a fresh policy by registry name or alias."""
    return get(name).build(**kwargs)


def entries() -> Tuple[PolicyEntry, ...]:
    """Every registered entry, in registration order."""
    _ensure_loaded()
    return tuple(_ENTRIES.values())


def names() -> Tuple[str, ...]:
    """Every canonical policy name, in registration order."""
    return tuple(e.name for e in entries())


def aliases() -> Dict[str, str]:
    """alias → canonical-name map."""
    _ensure_loaded()
    return dict(_ALIASES)


def check_names() -> Tuple[str, ...]:
    """The curated default set for ``repro check`` / the differential
    harness (the paper's evaluated policies plus the arena rivals)."""
    return tuple(e.name for e in entries() if e.check_default)


def arena_names(hybrid: bool = False) -> Tuple[str, ...]:
    """The ``repro compare --arena`` grid members.

    Hybrid-only policies (the Lhybrid family) join only when the grid
    runs on a hybrid LLC (``hybrid=True``).
    """
    return tuple(
        e.name for e in entries() if e.arena and (hybrid or not e.hybrid_only)
    )


def batched_names() -> Tuple[str, ...]:
    """Policies declared eligible for the SoA batched kernel."""
    return tuple(e.name for e in entries() if e.kernel == BATCHED)


def validate_names(
    policies, *, error: Optional[Callable[[str], Exception]] = None
) -> Tuple[str, ...]:
    """Canonicalize a sequence of policy names, failing on the first
    unknown one. ``error`` rewraps the registry's message in a
    different exception type (the exec layer raises ExecutionError)."""
    resolved: List[str] = []
    for name in policies:
        try:
            resolved.append(canonical(name))
        except ConfigurationError as exc:
            if error is not None:
                raise error(str(exc)) from None
            raise
    return tuple(resolved)


@contextlib.contextmanager
def overridden(name: str, factory) -> "object":
    """Temporarily swap a policy's factory (mutation/fault-injection
    tests re-introduce historical bugs through this hook)."""
    entry = get(name)
    _ENTRIES[entry.name] = dataclasses.replace(entry, factory=factory)
    try:
        yield
    finally:
        _ENTRIES[entry.name] = entry


def catalog_rows() -> List[dict]:
    """Rows for the ``repro list`` output and the DESIGN.md catalog."""
    return [
        {
            "name": e.name,
            "aliases": "/".join(e.aliases),
            "paper": e.paper,
            "anchor": e.anchor,
            "rules": e.rules,
            "kernel": e.kernel,
            "hybrid_only": e.hybrid_only,
            "arena": e.arena,
            "check_default": e.check_default,
            "events": e.events,
            "invariants": e.invariants,
        }
        for e in entries()
    ]
