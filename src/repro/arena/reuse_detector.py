"""Reuse Detector: bypass LLC fills for blocks with no predicted reuse.

Rodríguez-Rodríguez et al., "Reuse Detector: improving the management
of STT-RAM SLLCs" (arXiv 2402.00533) observe that most blocks inserted
into a shared LLC are never referenced again before eviction, and that
on an STT-RAM LLC every such insertion is a wasted expensive write.
Their mechanism inserts a block only once it has *demonstrated* reuse:
the first LLC miss on a block records it in a small per-set detector
table and bypasses the fill; a second miss while still tracked is the
reuse signal, and only then does the line fill the LLC.

Adaptation to this substrate: the paper's detector keys on block
addresses sampled near the LLC (their §3, Algorithm 1); we keep a
bounded FIFO of recently-missed tags per LLC set ("reuse bits"), which
is the same capacity-bounded second-miss test without PC information
(the synthetic traces carry none). Victim handling is non-inclusive:
clean L2 victims are dropped (a bypassed block simply has no LLC
copy), dirty victims always insert — dirty data must never be lost,
bypass predictor notwithstanding.

Accounting laws the differential harness holds this policy to:
``clean_writeback=False`` ⇒ zero ``clean_victim_writes``; the write
ledger and dirty-conservation invariants apply in full. The fill law
is *selective* (``fill_on_miss=True`` but only predicted-reuse misses
fill), so ``fill_writes <= llc misses`` with the gap reported via
``extra_stats()`` as ``reuse_bypasses``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..cache import EvictedLine
from ..inclusion.base import InclusionPolicy, LLCAccess


class ReuseDetectorPolicy(InclusionPolicy):
    """Selective-fill non-inclusion driven by a per-set reuse detector."""

    name = "reuse-detector"
    invalidate_on_hit = False
    fill_on_miss = True  # selectively: only predicted-reuse misses fill
    clean_writeback = False
    back_invalidates = False

    def __init__(self, detector_entries: int = 4) -> None:
        super().__init__()
        if detector_entries <= 0:
            raise ValueError(
                f"detector_entries must be positive, got {detector_entries}"
            )
        #: tracked tags per LLC set (the paper's per-set "reuse bits")
        self.detector_entries = detector_entries
        self._detector: List[OrderedDict] = []
        #: misses bypassed because the detector predicted no reuse
        self.reuse_bypasses = 0
        #: misses filled because the detector had seen the tag before
        self.reuse_fills = 0

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        self._detector = [OrderedDict() for _ in range(self.llc.num_sets)]

    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        block = self._llc_lookup(core, addr)
        if block is not None:
            return LLCAccess(hit=True, tech=block.tech)
        llc = self.llc
        tracked = self._detector[llc.set_index(addr)]
        tag = llc.tag_of(addr)
        if tag in tracked:
            # Second miss while tracked: demonstrated reuse — fill.
            del tracked[tag]
            self.reuse_fills += 1
            self.insert_or_update(core, addr, dirty=False, category="fill")
        else:
            # First sighting: record it, bypass the fill (the L2 still
            # receives the line; only the LLC write is skipped).
            tracked[tag] = None
            if len(tracked) > self.detector_entries:
                tracked.popitem(last=False)
            self.reuse_bypasses += 1
        return LLCAccess(hit=False, tech=llc.tech)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if not line.dirty:
            return  # clean victims are dropped, as in non-inclusion
        self.insert_or_update(core, line.addr, dirty=True, category="dirty_victim")

    def extra_stats(self) -> dict:
        return {
            "reuse_bypasses": self.reuse_bypasses,
            "reuse_fills": self.reuse_fills,
        }
