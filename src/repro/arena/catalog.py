"""The registered policy catalog: every entry, paper-anchored.

This module is pure data — :func:`repro.arena.registry.register` calls
only, loaded lazily by the registry on first use. The same entries
drive ``repro list``, the DESIGN.md §15 catalog table (doc-sync
tested), the default ``repro check`` set, the ``--arena`` grid, and
policy-name validation everywhere a name enters the system (CLI,
JobSpec, serve submissions).

Registration order is meaningful: :func:`~repro.arena.registry.names`
and the derived curated sets preserve it, and the differential
harness's default set reads in this order.
"""

from __future__ import annotations

from .registry import BATCHED, GENERIC, PolicyEntry, register

_LAP_PAPER = "LAP (Cheng et al., ISCA 2016)"

register(PolicyEntry(
    name="inclusive",
    factory="repro.inclusion.traditional:InclusivePolicy",
    summary="strictly inclusive LLC with back-invalidation",
    paper=_LAP_PAPER,
    anchor="Fig. 1a",
    rules="miss fills LLC; LLC evictions back-invalidate L1/L2; clean victims dropped",
    kernel=GENERIC,
    check_default=True,
    events=("llc_fill", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("inclusion",),
))
register(PolicyEntry(
    name="non-inclusive",
    factory="repro.inclusion.traditional:NonInclusivePolicy",
    summary="baseline inclusion property",
    paper=_LAP_PAPER,
    anchor="Fig. 1b, Table IV",
    rules="miss fills LLC; clean victims dropped; dirty victims insert/update",
    aliases=("noni",),
    kernel=BATCHED,
    check_default=True,
    events=("llc_fill", "dirty_victim", "llc_evict", "mem_writeback"),
))
register(PolicyEntry(
    name="exclusive",
    factory="repro.inclusion.traditional:ExclusivePolicy",
    summary="exclusive LLC: disjoint contents, no fills",
    paper=_LAP_PAPER,
    anchor="Fig. 1c, Table IV",
    rules="no fill; hit invalidates LLC copy; every L2 victim inserted",
    aliases=("ex",),
    kernel=BATCHED,
    check_default=True,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("exclusion", "no-fill"),
))
register(PolicyEntry(
    name="flexclusion",
    factory="repro.inclusion.switching:FLEXclusionPolicy",
    summary="capacity/bandwidth-driven non-inclusive/exclusive switching",
    paper="FLEXclusion (Sim et al., ISCA 2012) via " + _LAP_PAPER,
    anchor="Table IV",
    rules="set-dueling flips the whole LLC between noni and ex data flows",
    kernel=GENERIC,
    check_default=True,
    events=("llc_fill", "clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
))
register(PolicyEntry(
    name="dswitch",
    factory="repro.inclusion.switching:DswitchPolicy",
    summary="write-aware dynamic switching",
    paper=_LAP_PAPER,
    anchor="Table IV",
    rules="like flexclusion but the duel counts LLC writes, not misses",
    kernel=GENERIC,
    check_default=True,
    events=("llc_fill", "clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
))
register(PolicyEntry(
    name="lap",
    factory="repro.core.lap:LAPPolicy",
    summary="loop-block-aware inclusion with set-dueled replacement",
    paper=_LAP_PAPER,
    anchor="§III, Fig. 8",
    rules="no fill; no hit-invalidation; clean victims insert only when "
          "no duplicate; loop-bit set-dueling picks LRU vs loop-aware",
    defaults=(("replacement_mode", "duel"),),
    kernel=BATCHED,
    check_default=True,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap-lru",
    factory="repro.core.lap:LAPPolicy",
    summary="LAP forced to LRU replacement",
    paper=_LAP_PAPER,
    anchor="§III-B, Fig. 9",
    rules="LAP data flow; replacement pinned to LRU",
    defaults=(("replacement_mode", "lru"),),
    kernel=BATCHED,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap-loop",
    factory="repro.core.lap:LAPPolicy",
    summary="LAP forced to loop-aware replacement",
    paper=_LAP_PAPER,
    anchor="§III-B, Fig. 10",
    rules="LAP data flow; replacement pinned to loop-aware victim selection",
    defaults=(("replacement_mode", "loop"),),
    kernel=BATCHED,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap-rrip",
    factory="repro.core.lap:LAPPolicy",
    summary="LAP over an SRRIP baseline",
    paper="SRRIP (Jaleel et al., ISCA 2010) via " + _LAP_PAPER,
    anchor="§III-B (baseline generality)",
    rules="LAP data flow; duel baseline is SRRIP-HP instead of LRU",
    defaults=(("replacement_mode", "duel"), ("baseline", "srrip")),
    kernel=GENERIC,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lhybrid",
    factory="repro.core.lhybrid:LhybridPolicy",
    summary="LAP + all three hybrid-LLC placement stages",
    paper=_LAP_PAPER,
    anchor="§IV, Fig. 11",
    rules="LAP flow on a hybrid LLC; write-hit invalidation, loop→STT "
          "placement, non-loop→SRAM placement",
    defaults=(("winv", True), ("loop_stt", True), ("nloop_sram", True)),
    kernel=GENERIC,
    hybrid_only=True,
    check_default=True,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap+winv",
    factory="repro.core.lhybrid:LhybridPolicy",
    summary="Fig. 25 stage: write-hit invalidation only",
    paper=_LAP_PAPER,
    anchor="§IV-A, Fig. 25",
    rules="LAP flow; store hits to STT-resident lines invalidate and redirect",
    defaults=(("winv", True), ("loop_stt", False), ("nloop_sram", False)),
    kernel=GENERIC,
    hybrid_only=True,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap+loopstt",
    factory="repro.core.lhybrid:LhybridPolicy",
    summary="Fig. 25 stage: loop-blocks to STT-RAM only",
    paper=_LAP_PAPER,
    anchor="§IV-B, Fig. 25",
    rules="LAP flow; loop-block insertions steered to the STT region",
    defaults=(("winv", False), ("loop_stt", True), ("nloop_sram", False)),
    kernel=GENERIC,
    hybrid_only=True,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap+nloopsram",
    factory="repro.core.lhybrid:LhybridPolicy",
    summary="Fig. 25 stage: non-loop-blocks to SRAM only",
    paper=_LAP_PAPER,
    anchor="§IV-B, Fig. 25",
    rules="LAP flow; non-loop insertions steered to the SRAM region",
    defaults=(("winv", False), ("loop_stt", False), ("nloop_sram", True)),
    kernel=GENERIC,
    hybrid_only=True,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="lap+dwb",
    factory="repro.core.deadwrite:DeadWriteBypassLAP",
    summary="LAP composed with DASCA-style dead-write bypass",
    paper="DASCA (Ahn et al., HPCA 2014) via " + _LAP_PAPER,
    anchor="§VII (orthogonality claim)",
    rules="LAP flow; clean victims from dead-write regions dropped by a "
          "saturating-counter predictor",
    kernel=GENERIC,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="exclusive+dwb",
    factory="repro.core.deadwrite:DeadWriteBypassExclusive",
    summary="exclusive LLC with DASCA-style dead-write bypass",
    paper="DASCA (Ahn et al., HPCA 2014)",
    anchor="§III (dead-write bypass)",
    rules="exclusive flow; predicted-dead clean victims bypass the LLC",
    kernel=GENERIC,
    arena=False,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))

# ---------------------------------------------------------------------
# arena rivals from other papers (PAPERS.md retrieval set)
# ---------------------------------------------------------------------
register(PolicyEntry(
    name="reuse-detector",
    factory="repro.arena.reuse_detector:ReuseDetectorPolicy",
    summary="fill only blocks with demonstrated reuse (per-set detector)",
    paper="Reuse Detector (Rodríguez-Rodríguez et al., arXiv 2402.00533)",
    anchor="§3, Alg. 1",
    rules="first miss records the tag and bypasses the fill; a second "
          "miss while tracked fills; clean victims dropped; dirty insert",
    kernel=GENERIC,
    check_default=True,
    events=("llc_fill", "dirty_victim", "llc_evict", "mem_writeback"),
))
register(PolicyEntry(
    name="rd-copyback",
    factory="repro.arena.rd_copyback:RDCopybackPolicy",
    summary="reuse-distance-gated copy-backs of clean victims",
    paper="RD copy-back (Wang, Wang & Ye, arXiv 2105.14442)",
    anchor="§III (reuse-distance filter)",
    rules="no fill; no hit-invalidation; clean victims copy back iff "
          "observed reuse distance fits the LLC; dirty insert/update",
    kernel=GENERIC,
    check_default=True,
    events=("clean_insert", "dirty_victim", "llc_evict", "mem_writeback"),
    invariants=("no-fill",),
))
register(PolicyEntry(
    name="ways-off",
    factory="repro.arena.ways_off:WaysOffPolicy",
    summary="power down LLC ways, trade misses for leakage",
    paper="Way reconfiguration (Mittal, arXiv 1312.2207)",
    anchor="§3 (way-granularity gating)",
    rules="non-inclusive flow with victim selection restricted to the "
          "active ways; static energy scaled by the active fraction",
    kernel=GENERIC,
    check_default=True,
    events=("llc_fill", "dirty_victim", "llc_evict", "mem_writeback"),
))
