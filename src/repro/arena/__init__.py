"""Cross-paper policy arena.

Two things live here:

- the policy **registry** (:mod:`~repro.arena.registry` +
  :mod:`~repro.arena.catalog`): the single source of truth for which
  inclusion policies exist, how to build them, and what each one
  claims — source paper + anchor, data-flow rules, invariant coverage,
  SoA-kernel eligibility, and curated-set membership (``repro check``
  default, ``--arena`` grid);
- the **arena rivals**: mechanisms from papers other than LAP, riding
  the same :class:`~repro.inclusion.base.InclusionPolicy` protocol and
  probe bus so they face the same invariants and differential laws as
  the paper's own policies (see DESIGN.md §15 for the catalog and the
  how-to-add guide).
"""

from . import registry
from .rd_copyback import RDCopybackPolicy
from .registry import PolicyEntry
from .reuse_detector import ReuseDetectorPolicy
from .ways_off import WayGatedReplacement, WaysOffPolicy

__all__ = [
    "registry",
    "PolicyEntry",
    "ReuseDetectorPolicy",
    "RDCopybackPolicy",
    "WaysOffPolicy",
    "WayGatedReplacement",
]
