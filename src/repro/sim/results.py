"""Run results: every metric the paper's figures consume, in one place."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache.stats import CacheStats, CoherenceStats, LoopBlockStats
from ..energy.model import EnergyResult
from ..errors import AnalysisError
from ..hierarchy.hierarchy import HierarchyStats


@dataclass
class RunResult:
    """Outcome of simulating one workload under one inclusion policy."""

    policy: str
    workload: str
    system: str
    refs_per_core: int
    instructions: int
    cycles: float
    core_instructions: List[int]
    core_cycles: List[float]
    llc: CacheStats
    hier: HierarchyStats
    loop: LoopBlockStats
    energy: EnergyResult
    coherence: Optional[CoherenceStats] = None
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    @property
    def epi(self) -> float:
        """LLC energy per instruction (J/instr)."""
        return self.energy.epi

    @property
    def dynamic_epi(self) -> float:
        return self.energy.dynamic_epi

    @property
    def static_epi(self) -> float:
        return self.energy.static_epi

    @property
    def total_energy(self) -> float:
        """Total LLC energy in joules (Fig. 20a uses totals)."""
        return self.energy.total_j

    @property
    def throughput(self) -> float:
        """Sum of per-core IPCs (the paper's multiprogrammed metric)."""
        total = 0.0
        for instr, cyc in zip(self.core_instructions, self.core_cycles):
            if cyc > 0:
                total += instr / cyc
        return total

    @property
    def latency(self) -> float:
        """Run duration in cycles (the multithreaded metric)."""
        return self.cycles

    @property
    def llc_misses(self) -> int:
        return self.hier.llc_demand_accesses - self.hier.llc_demand_hits

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        if self.instructions <= 0:
            raise AnalysisError("MPKI undefined for zero instructions")
        return self.llc_misses / (self.instructions / 1000.0)

    @property
    def llc_writes(self) -> int:
        """Total LLC writes in the paper's Fig. 15 sense."""
        return self.llc.llc_writes

    def write_breakdown(self) -> Dict[str, int]:
        """Fig. 15's three write classes (updates fold into L2-dirty)."""
        return {
            "llc_data_fill": self.llc.fill_writes,
            "l2_dirty": self.llc.dirty_victim_writes + self.llc.update_writes,
            "l2_clean": self.llc.clean_victim_writes,
        }

    @property
    def redundant_fill_fraction(self) -> float:
        """Redundant fills over all LLC data-fills (Figs. 6 / 17)."""
        if self.llc.fill_writes == 0:
            return 0.0
        return self.llc.redundant_fills / self.llc.fill_writes

    @property
    def loop_block_fraction(self) -> float:
        """Clean-trip share of L2 evictions (Fig. 4)."""
        return self.loop.loop_block_fraction

    @property
    def loop_reinsertion_share(self) -> float:
        """Share of LLC writes that redundantly re-insert loop-blocks
        (Fig. 16's energy-harmful writes; zero under non-inclusion and
        LAP-with-duplicates by construction)."""
        if self.llc_writes == 0:
            return 0.0
        return self.loop.loop_reinsertions / self.llc_writes

    @property
    def llc_loop_occupancy(self) -> float:
        """Average fraction of LLC-resident blocks that are loop-blocks
        (Fig. 16)."""
        if self.loop.llc_loop_samples == 0:
            return 0.0
        return self.loop.llc_loop_blocks / self.loop.llc_loop_samples

    @property
    def snoop_traffic(self) -> int:
        """Coherence traffic (Fig. 20c); zero when coherence is off."""
        return self.coherence.total_traffic if self.coherence else 0

    # ------------------------------------------------------------------
    # serialisation (lazy imports: repro.exec depends on this module)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe dict form (see :mod:`repro.exec.serialize`)."""
        from ..exec.serialize import result_to_dict

        return result_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a result previously flattened by :meth:`to_dict`."""
        from ..exec.serialize import result_from_dict

        return result_from_dict(data)

    def summary(self) -> Dict[str, float]:
        """A compact dict of headline metrics (reports, EXPERIMENTS.md)."""
        return {
            "epi": self.epi,
            "static_epi": self.static_epi,
            "dynamic_epi": self.dynamic_epi,
            "throughput": self.throughput,
            "mpki": self.mpki,
            "llc_writes": float(self.llc_writes),
            "loop_fraction": self.loop_block_fraction,
            "redundant_fill_fraction": self.redundant_fill_fraction,
        }
