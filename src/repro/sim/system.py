"""System-level configuration (paper Table II) and scaled variants.

:class:`SystemConfig` bundles the hierarchy geometry with the energy
model's knobs and the set-dueling cadence, and derives the
:class:`~repro.workloads.synthetic.ScaleContext` workload builders use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..energy import (
    DEFAULT_CLOCK_HZ,
    DEFAULT_LEAKAGE_COMPENSATION,
    LLCEnergyModel,
    SRAM,
    STT_RAM,
    TechnologyParams,
)
from ..hierarchy.config import HierarchyConfig, scaled_config, table2_config
from ..workloads.synthetic import ScaleContext


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate and meter one simulated system.

    ``instrumentation`` selects the probe set the simulator attaches to
    the hierarchy (see :func:`repro.instr.make_probes`): ``"default"``
    is the paper's always-on instrumentation (loop tracker,
    redundant-fill detector, occupancy sampler), ``"none"`` runs with
    zero per-access instrumentation overhead, and a comma-separated
    list of probe names selects exactly those probes.

    ``tag_backend`` selects the tag-store layout (see
    :mod:`repro.kernel`): ``"object"`` (one Python block per way),
    ``"soa"`` (numpy struct-of-arrays + the batched probe-free
    kernel), or ``"auto"`` — soa exactly when the run is probe-free,
    non-coherent, and the policy has a batched kernel flow, object
    otherwise. Stats are bit-identical across backends; the knob only
    changes speed.
    """

    hierarchy: HierarchyConfig
    label: str = "system"
    clock_hz: float = DEFAULT_CLOCK_HZ
    leakage_compensation: float = DEFAULT_LEAKAGE_COMPENSATION
    duel_interval: int = 4096
    occupancy_sample_interval: int = 2048
    instrumentation: str = "default"
    tag_backend: str = "auto"

    # ------------------------------------------------------------------
    # stock configurations
    # ------------------------------------------------------------------
    @classmethod
    def scaled(
        cls,
        ncores: int = 4,
        tech: TechnologyParams = STT_RAM,
        hybrid: bool = False,
        llc_kb: int = 128,
        l2_kb: int = 8,
        **kwargs,
    ) -> "SystemConfig":
        """The geometry-preserving scaled system used by the harness."""
        label = kwargs.pop("label", f"scaled-{tech.name}{'-hybrid' if hybrid else ''}")
        return cls(
            hierarchy=scaled_config(
                ncores=ncores, tech=tech, hybrid=hybrid, llc_kb=llc_kb, l2_kb=l2_kb
            ),
            label=label,
            **kwargs,
        )

    @classmethod
    def table2(
        cls,
        ncores: int = 4,
        tech: TechnologyParams = STT_RAM,
        hybrid: bool = False,
        **kwargs,
    ) -> "SystemConfig":
        """The paper's full-scale Table II system (8 MB LLC).

        Full-scale runs use no leakage compensation — the access-per-
        instruction rate is realistic at this geometry.
        """
        label = kwargs.pop("label", f"table2-{tech.name}{'-hybrid' if hybrid else ''}")
        kwargs.setdefault("leakage_compensation", 1.0)
        return cls(
            hierarchy=table2_config(ncores=ncores, tech=tech, hybrid=hybrid),
            label=label,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def with_tech(self, tech: TechnologyParams) -> "SystemConfig":
        """Same geometry, different LLC technology (Fig. 23 sweeps)."""
        return replace(
            self,
            hierarchy=self.hierarchy.with_llc(tech=tech),
            label=f"{self.label}@{tech.name}",
        )

    def probe_free(self) -> "SystemConfig":
        """Same system with all instrumentation probes disabled.

        Runs on the uninstrumented hot path: loop-block stats come back
        empty and ``redundant_fills`` stays zero, but every mechanical
        counter (hits, misses, write classes, energy inputs) is
        unaffected. Use for large policy-comparison sweeps where only
        the mechanical stats matter.
        """
        return replace(self, instrumentation="none")

    def with_tag_backend(self, backend: str) -> "SystemConfig":
        """Same system pinned to one tag-store backend (Fig. 14 parity
        runs and the benchmark harness use this)."""
        return replace(self, tag_backend=backend)

    def probes(self):
        """The probe list implied by ``instrumentation`` (fresh instances)."""
        from ..instr import make_probes

        return make_probes(
            self.instrumentation, occupancy_interval=self.occupancy_sample_interval
        )

    def scale_context(self) -> ScaleContext:
        """Cache geometry as seen by workload builders."""
        h = self.hierarchy
        return ScaleContext(
            l1_bytes=h.l1.size_bytes,
            l2_bytes=h.l2.size_bytes,
            llc_bytes=h.llc.size_bytes,
            block_size=h.block_size,
        )

    def energy_model(self) -> LLCEnergyModel:
        """The LLC energy model implied by the hierarchy's technology."""
        llc = self.hierarchy.llc
        return LLCEnergyModel(
            sram_bytes=llc.sram_bytes,
            stt_bytes=llc.stt_bytes,
            sram=llc.sram_tech if llc.is_hybrid or llc.tech.name.startswith("sram") else SRAM,
            stt=llc.tech if not llc.tech.name.startswith("sram") else STT_RAM,
            clock_hz=self.clock_hz,
            leakage_compensation=self.leakage_compensation,
        )
