"""Simulation driving: system configs, simulator, runner, results."""

from .results import RunResult
from .runner import (
    DEFAULT_REFS,
    benchmarks_builder,
    duplicate_builder,
    mix_builder,
    multithreaded_builder,
    normalized,
    run_matrix,
    run_one,
    run_policies,
)
from .simulator import Simulator, simulate
from .system import SystemConfig

__all__ = [
    "SystemConfig",
    "Simulator",
    "simulate",
    "RunResult",
    "run_one",
    "run_policies",
    "run_matrix",
    "normalized",
    "duplicate_builder",
    "mix_builder",
    "benchmarks_builder",
    "multithreaded_builder",
    "DEFAULT_REFS",
]
