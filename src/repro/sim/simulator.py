"""The trace-driven multi-core simulator.

:class:`Simulator` instantiates a hierarchy for one (system, policy,
workload) triple and drives it: per-core trace batches are pulled from
the workload's generators and interleaved reference-by-reference across
cores (round-robin), which bounds the clock skew the bank-contention
model sees. Coherence is enabled automatically for multithreaded
workloads and skipped for multiprogrammed ones (their address spaces
are disjoint by construction, so every snoop would miss).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from ..core.policies import make_policy
from ..errors import SimulationError
from ..hierarchy.hierarchy import CacheHierarchy
from ..inclusion.base import InclusionPolicy
from ..instr import Probe
from ..kernel import numpy_available, resolve_backend
from ..obs.spans import span
from ..workloads.mixes import MULTITHREADED, Workload
from .results import RunResult
from .system import SystemConfig

DEFAULT_BATCH = 4096


class Simulator:
    """Runs one workload under one inclusion policy."""

    def __init__(
        self,
        system: SystemConfig,
        policy: Union[str, InclusionPolicy],
        workload: Workload,
        enable_coherence: Optional[bool] = None,
        probes: Optional[Sequence[Probe]] = None,
        **policy_kwargs,
    ) -> None:
        if workload.ncores != system.hierarchy.ncores:
            raise SimulationError(
                f"workload has {workload.ncores} generators but the system has "
                f"{system.hierarchy.ncores} cores"
            )
        if isinstance(policy, str):
            policy_kwargs.setdefault("duel_interval", system.duel_interval)
            try:
                policy = make_policy(policy, **policy_kwargs)
            except TypeError:
                # Policy without dueling knobs (e.g. traditional ones).
                policy_kwargs.pop("duel_interval", None)
                policy = make_policy(policy, **policy_kwargs)
        self.system = system
        self.workload = workload
        self.policy = policy
        if enable_coherence is None:
            enable_coherence = workload.kind == MULTITHREADED
        # The probe list comes from the system config unless the caller
        # supplies one explicitly (tests, custom instrumentation).
        if probes is None:
            probes = system.probes()
        #: when True (default), probe-free non-coherent runs on the soa
        #: backend execute through the batched kernel; parity tests set
        #: this False to force the generic loop over the same store.
        self.enable_batch_kernel = True
        self.tag_backend = self._resolve_backend(
            system.tag_backend, policy, enable_coherence, probes
        )
        self.hierarchy = CacheHierarchy(
            system.hierarchy,
            policy,
            enable_coherence=enable_coherence,
            occupancy_sample_interval=system.occupancy_sample_interval,
            probes=probes,
            tag_backend=self.tag_backend,
        )

    @staticmethod
    def _resolve_backend(requested, policy, enable_coherence, probes) -> str:
        """Resolve ``SystemConfig.tag_backend`` for this run.

        ``"auto"`` picks soa exactly when the batched kernel would
        engage (numpy present, no probes, no coherence, supported
        policy) and object otherwise, so default runs either get the
        full speedup or stay on the reference layout — never the
        slower proxy-view middle ground. Explicit names (or the
        ``REPRO_TAG_BACKEND`` override) are honoured as-is.
        """
        import os

        from ..kernel import ENV_VAR

        env = os.environ.get(ENV_VAR)
        if env:
            return resolve_backend(env)
        if requested != "auto":
            return resolve_backend(requested)
        if not numpy_available() or probes or enable_coherence:
            return "object"
        from ..kernel.batch import kernel_mode

        return "soa" if kernel_mode(policy) is not None else "object"

    def run(self, refs_per_core: int, batch: int = DEFAULT_BATCH) -> RunResult:
        """Simulate ``refs_per_core`` references on every core."""
        if refs_per_core <= 0:
            raise SimulationError(f"refs_per_core must be positive, got {refs_per_core}")
        wall_start = time.perf_counter()
        h = self.hierarchy
        with span(
            "simulate",
            policy=self.policy.name,
            workload=self.workload.name,
            refs_per_core=refs_per_core,
        ) as run_span:
            core_instr = self._run_references(refs_per_core, batch)
            h.finish()
            run_span.set(accesses=h.stats.accesses)
        self._report_metrics(time.perf_counter() - wall_start)
        return self._collect(refs_per_core, core_instr)

    def _run_references(self, refs_per_core: int, batch: int):
        """Drive the references, through the batched kernel when possible.

        Both flows produce identical stats and timing; the kernel is
        purely a faster execution of the same reference stream (see
        :mod:`repro.kernel.batch` for the eligibility conditions).
        """
        h = self.hierarchy
        if self.enable_batch_kernel and h.llc.store.supports_batch:
            from ..kernel import batch as _batch

            if _batch.eligible(h) and _batch.kernel_mode(self.policy) is not None:
                return _batch.run_kernel(self, refs_per_core, batch)
        timing = h.timing
        gens = self.workload.generators
        ncores = len(gens)
        access = h.access
        core_instr = [0.0] * ncores

        remaining = refs_per_core
        while remaining > 0:
            take = min(batch, remaining)
            batches = [gen.batch(take) for gen in gens]
            addr_lists = [b[0].tolist() for b in batches]
            write_lists = [b[1].tolist() for b in batches]
            for i in range(take):
                for core in range(ncores):
                    access(core, addr_lists[core][i], write_lists[core][i])
            for core, gen in enumerate(gens):
                instrs = take * gen.instr_per_ref
                core_instr[core] += instrs
                timing.advance_instructions(core, instrs)
            remaining -= take
        return core_instr

    def _report_metrics(self, wall_s: float) -> None:
        """Once-per-run roll-ups into the process metrics registry."""
        from ..telemetry.metrics import get_registry

        registry = get_registry()
        registry.counter("sim.runs").inc()
        registry.counter("sim.accesses").inc(self.hierarchy.stats.accesses)
        registry.histogram("sim.wall_s").observe(wall_s)
        if wall_s > 0:
            registry.histogram("sim.accesses_per_s").observe(
                self.hierarchy.stats.accesses / wall_s
            )

    def _collect(self, refs_per_core: int, core_instr) -> RunResult:
        h = self.hierarchy
        instructions = int(sum(core_instr))
        cycles = h.timing.max_cycles
        # Way-gating policies (arena ways-off) power down part of the
        # LLC; their leakage is charged only for the active fraction.
        active_fraction = float(getattr(self.policy, "llc_active_fraction", 1.0))
        energy = self.system.energy_model().compute(
            h.llc.stats, int(cycles), instructions, active_fraction=active_fraction
        )
        extra = dict(self.policy.extra_stats())
        if active_fraction < 1.0:
            # Leakage the gated ways would have cost at full power.
            extra["llc_static_saved_j"] = energy.static_j * (
                1.0 / active_fraction - 1.0
            )
        if getattr(self.policy, "winv_redirects", None) is not None:
            extra["winv_redirects"] = self.policy.winv_redirects
        dueling = getattr(self.policy, "dueling", None)
        if dueling is not None:
            extra["duel_decisions_a"] = dueling.stats.decisions_a
            extra["duel_decisions_b"] = dueling.stats.decisions_b
        return RunResult(
            extra=extra,
            policy=self.policy.name,
            workload=self.workload.name,
            system=self.system.label,
            refs_per_core=refs_per_core,
            instructions=instructions,
            cycles=cycles,
            core_instructions=[int(x) for x in core_instr],
            core_cycles=list(h.timing.core_cycles),
            llc=h.llc.stats,
            hier=h.stats,
            loop=h.loop_stats(),
            energy=energy,
            coherence=h.coherence.stats if h.coherence else None,
        )


def simulate(
    system: SystemConfig,
    policy: Union[str, InclusionPolicy],
    workload: Workload,
    refs_per_core: int,
    **kwargs,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(system, policy, workload, **kwargs).run(refs_per_core)
