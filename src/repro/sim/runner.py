"""Experiment runner: build-fresh-workload-per-run orchestration.

Trace generators are stateful streams, so comparing policies fairly
requires rebuilding the workload (same seed → bit-identical trace) for
every run. The runner owns that discipline: callers pass a *workload
builder* (``ScaleContext -> Workload``) and a list of policy names, and
get back one :class:`~repro.sim.results.RunResult` per policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from ..workloads.mixes import (
    Workload,
    make_duplicate,
    make_multiprogrammed,
    make_multithreaded,
    make_table3_mix,
)
from ..workloads.synthetic import ScaleContext
from .results import RunResult
from .simulator import Simulator
from .system import SystemConfig

WorkloadBuilder = Callable[[ScaleContext], Workload]

# Default reference count per core for harness runs; large enough for
# working sets to cycle through the scaled hierarchy several times.
DEFAULT_REFS = 120_000


def duplicate_builder(benchmark: str, ncores: int = 4, seed: int = 0) -> WorkloadBuilder:
    """Builder for N duplicate copies of one benchmark (Figs. 2/4/6)."""

    def build(ctx: ScaleContext) -> Workload:
        return make_duplicate(benchmark, ctx, ncores=ncores, seed=seed)

    return build


def mix_builder(mix_name: str, seed: int = 0) -> WorkloadBuilder:
    """Builder for a Table III mix (WL1..WH5)."""

    def build(ctx: ScaleContext) -> Workload:
        return make_table3_mix(mix_name, ctx, seed=seed)

    return build


def benchmarks_builder(benchmarks: Sequence[str], seed: int = 0, name: str | None = None) -> WorkloadBuilder:
    """Builder for an arbitrary multiprogrammed combination."""

    def build(ctx: ScaleContext) -> Workload:
        return make_multiprogrammed(benchmarks, ctx, seed=seed, name=name)

    return build


def multithreaded_builder(benchmark: str, nthreads: int = 4, seed: int = 0) -> WorkloadBuilder:
    """Builder for a PARSEC-like multithreaded workload (Fig. 20)."""

    def build(ctx: ScaleContext) -> Workload:
        return make_multithreaded(benchmark, ctx, nthreads=nthreads, seed=seed)

    return build


def run_one(
    system: SystemConfig,
    policy: str,
    builder: WorkloadBuilder,
    refs_per_core: int = DEFAULT_REFS,
    **policy_kwargs,
) -> RunResult:
    """Simulate one (policy, workload) pair on a fresh hierarchy."""
    workload = builder(system.scale_context())
    sim = Simulator(system, policy, workload, **policy_kwargs)
    return sim.run(refs_per_core)


def run_policies(
    system: SystemConfig,
    policies: Iterable[str],
    builder: WorkloadBuilder,
    refs_per_core: int = DEFAULT_REFS,
) -> Dict[str, RunResult]:
    """Run several policies against bit-identical copies of a workload."""
    return {
        policy: run_one(system, policy, builder, refs_per_core) for policy in policies
    }


def run_matrix(
    system: SystemConfig,
    policies: Sequence[str],
    builders: Dict[str, WorkloadBuilder],
    refs_per_core: int = DEFAULT_REFS,
) -> Dict[str, Dict[str, RunResult]]:
    """Full workload × policy sweep: ``{workload: {policy: result}}``."""
    out: Dict[str, Dict[str, RunResult]] = {}
    for wname, builder in builders.items():
        out[wname] = run_policies(system, policies, builder, refs_per_core)
    return out


def normalized(
    results: Dict[str, RunResult],
    metric: str,
    baseline: str = "non-inclusive",
) -> Dict[str, float]:
    """Normalise a metric across policies to a baseline policy.

    ``metric`` names a :class:`RunResult` property (``"epi"``,
    ``"mpki"``, ``"throughput"``, ``"llc_writes"``, ...).
    """
    base = getattr(results[baseline], metric)
    if base == 0:
        raise ZeroDivisionError(
            f"baseline {baseline!r} has zero {metric!r}; cannot normalise"
        )
    return {name: getattr(r, metric) / base for name, r in results.items()}
