"""Experiment runner: build-fresh-workload-per-run orchestration.

Trace generators are stateful streams, so comparing policies fairly
requires rebuilding the workload (same seed → bit-identical trace) for
every run. The runner owns that discipline: callers pass a *workload
builder* (``ScaleContext -> Workload``) and a list of policy names, and
get back one :class:`~repro.sim.results.RunResult` per policy.

Builders returned by this module are declarative
:class:`~repro.exec.jobs.WorkloadSpec` values (picklable, content-
addressable) rather than closures; any callable with the same signature
still works for the serial path. When a process-wide result cache is
active (see :func:`repro.exec.set_active_cache`), :func:`run_one`
transparently serves cache hits for spec-described runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from ..errors import AnalysisError
from ..exec.jobs import JobSpec, WorkloadSpec
from ..workloads.mixes import Workload
from ..workloads.synthetic import ScaleContext
from .results import RunResult
from .simulator import Simulator
from .system import SystemConfig

WorkloadBuilder = Callable[[ScaleContext], Workload]

# Default reference count per core for harness runs; large enough for
# working sets to cycle through the scaled hierarchy several times.
DEFAULT_REFS = 120_000


def duplicate_builder(benchmark: str, ncores: int = 4, seed: int = 0) -> WorkloadSpec:
    """Builder for N duplicate copies of one benchmark (Figs. 2/4/6)."""
    return WorkloadSpec.duplicate(benchmark, ncores=ncores, seed=seed)


def mix_builder(mix_name: str, seed: int = 0) -> WorkloadSpec:
    """Builder for a Table III mix (WL1..WH5)."""
    return WorkloadSpec.mix(mix_name, seed=seed)


def benchmarks_builder(
    benchmarks: Sequence[str], seed: int = 0, name: str | None = None
) -> WorkloadSpec:
    """Builder for an arbitrary multiprogrammed combination."""
    return WorkloadSpec.multiprogrammed(benchmarks, seed=seed, name=name)


def multithreaded_builder(benchmark: str, nthreads: int = 4, seed: int = 0) -> WorkloadSpec:
    """Builder for a PARSEC-like multithreaded workload (Fig. 20)."""
    return WorkloadSpec.multithreaded(benchmark, nthreads=nthreads, seed=seed)


def run_one(
    system: SystemConfig,
    policy: str,
    builder: WorkloadBuilder,
    refs_per_core: int = DEFAULT_REFS,
    **policy_kwargs,
) -> RunResult:
    """Simulate one (policy, workload) pair on a fresh hierarchy.

    The probe list (instrumentation) is derived from
    ``system.instrumentation`` by the simulator — run a
    ``system.probe_free()`` config for uninstrumented sweeps. The
    field is part of the content-addressed cache key, so instrumented
    and probe-free runs never alias in the result cache.

    If a process-wide result cache is active and the run is fully
    described by declarative values (a :class:`WorkloadSpec` builder, a
    policy *name*, no extra policy kwargs), the cache is consulted first
    and populated afterwards; otherwise the run always simulates.
    """
    if not policy_kwargs and isinstance(builder, WorkloadSpec) and isinstance(policy, str):
        from ..exec.cache import get_active_cache

        cache = get_active_cache()
        if cache is not None:
            job = JobSpec(
                system=system, workload=builder, policy=policy, refs_per_core=refs_per_core
            )
            hit = cache.get(job)
            if hit is not None:
                return hit
            result = job.run()
            cache.put(job, result)
            return result
    workload = builder(system.scale_context())
    sim = Simulator(system, policy, workload, **policy_kwargs)
    return sim.run(refs_per_core)


def run_policies(
    system: SystemConfig,
    policies: Iterable[str],
    builder: WorkloadBuilder,
    refs_per_core: int = DEFAULT_REFS,
) -> Dict[str, RunResult]:
    """Run several policies against bit-identical copies of a workload."""
    return {
        policy: run_one(system, policy, builder, refs_per_core) for policy in policies
    }


def run_matrix(
    system: SystemConfig,
    policies: Sequence[str],
    builders: Dict[str, WorkloadBuilder],
    refs_per_core: int = DEFAULT_REFS,
) -> Dict[str, Dict[str, RunResult]]:
    """Full workload × policy sweep: ``{workload: {policy: result}}``."""
    out: Dict[str, Dict[str, RunResult]] = {}
    for wname, builder in builders.items():
        out[wname] = run_policies(system, policies, builder, refs_per_core)
    return out


def normalized(
    results: Dict[str, RunResult],
    metric: str,
    baseline: str = "non-inclusive",
) -> Dict[str, float]:
    """Normalise a metric across policies to a baseline policy.

    ``metric`` names a :class:`RunResult` property (``"epi"``,
    ``"mpki"``, ``"throughput"``, ``"llc_writes"``, ...).
    """
    if baseline not in results:
        raise AnalysisError(
            f"baseline policy {baseline!r} missing from results "
            f"(have: {sorted(results)})"
        )
    base = getattr(results[baseline], metric)
    if base == 0:
        raise AnalysisError(
            f"cannot normalise {metric!r}: baseline {baseline!r} has zero {metric!r}"
        )
    return {name: getattr(r, metric) / base for name, r in results.items()}
