"""Parameter-sweep framework with CSV export.

The paper's Section VI-D sensitivity studies are grids over system
parameters (L2:L3 ratio, core count, write/read energy ratio) crossed
with workloads and policies. :class:`Sweep` expresses such grids
declaratively and collects one flat record per run, ready for CSV
export or downstream aggregation — the machinery behind the Fig. 21–23
benchmarks and any new sensitivity study a user wants to script.
"""

from __future__ import annotations

import csv
import io
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import AnalysisError, ExecutionError
from ..exec.cache import ResultCache
from ..exec.jobs import JobSpec, WorkloadSpec
from ..exec.pool import execute_jobs
from .results import RunResult
from .runner import WorkloadBuilder, run_one
from .system import SystemConfig

# A sweep axis: label -> SystemConfig
SystemAxis = Dict[str, SystemConfig]
# workload axis: label -> builder
WorkloadAxis = Dict[str, WorkloadBuilder]

RECORD_METRICS = (
    "epi",
    "static_epi",
    "dynamic_epi",
    "throughput",
    "mpki",
    "llc_writes",
    "llc_misses",
    "loop_block_fraction",
    "redundant_fill_fraction",
    "snoop_traffic",
)


@dataclass(frozen=True)
class SweepRecord:
    """One run's flattened outcome."""

    system: str
    workload: str
    policy: str
    metrics: Dict[str, float]

    def row(self) -> Dict[str, Union[str, float]]:
        return {"system": self.system, "workload": self.workload,
                "policy": self.policy, **self.metrics}


@dataclass
class Sweep:
    """A systems × workloads × policies grid.

    Example
    -------
    >>> sweep = Sweep(
    ...     systems={"1:4": SystemConfig.scaled(l2_kb=8)},
    ...     workloads={"WH1": mix_builder("WH1")},
    ...     policies=("non-inclusive", "lap"),
    ...     refs_per_core=10_000,
    ... )
    >>> records = sweep.run()  # doctest: +SKIP
    """

    systems: SystemAxis
    workloads: WorkloadAxis
    policies: Sequence[str]
    refs_per_core: int = 10_000
    metrics: Sequence[str] = RECORD_METRICS

    def __post_init__(self) -> None:
        if not self.systems or not self.workloads or not self.policies:
            raise AnalysisError("a sweep needs at least one system, workload, and policy")
        if self.refs_per_core <= 0:
            raise AnalysisError("refs_per_core must be positive")

    def size(self) -> int:
        """Number of simulations the sweep will run."""
        return len(self.systems) * len(self.workloads) * len(self.policies)

    def run(
        self,
        progress: Optional[Callable[[SweepRecord], None]] = None,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        manifest_dir: Optional[Union[str, pathlib.Path]] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> List[SweepRecord]:
        """Execute the grid; returns one record per run (stable order).

        ``max_workers > 1`` fans the grid out over worker processes and
        ``cache`` memoises results by content address; both paths emit
        records in exactly the serial order (systems × workloads ×
        policies, insertion order), so downstream CSV/normalisation is
        oblivious to how the grid was executed. The default
        (``max_workers=1``, no cache) is the unchanged serial path.

        Any engine-executed run (parallel, cached, or explicit
        ``manifest_dir``) records per-job profiles; a run with a cache
        writes the roll-up as ``manifest.json`` next to the cached
        results (``manifest_dir`` overrides the location).
        ``heartbeat_interval`` emits progress lines for long sweeps.
        """
        cells = [
            (sys_label, system, wl_label, builder, policy)
            for sys_label, system in self.systems.items()
            for wl_label, builder in self.workloads.items()
            for policy in self.policies
        ]
        if max_workers <= 1 and cache is None and manifest_dir is None:
            results = [
                run_one(system, policy, builder, self.refs_per_core)
                for _, system, _, builder, policy in cells
            ]
        else:
            if manifest_dir is None and cache is not None:
                manifest_dir = cache.root
            results = execute_jobs(
                self._jobs(cells),
                max_workers=max_workers,
                cache=cache,
                manifest_dir=manifest_dir,
                heartbeat_interval=heartbeat_interval,
            )
        records: List[SweepRecord] = []
        for (sys_label, _, wl_label, _, policy), result in zip(cells, results):
            record = SweepRecord(
                system=sys_label,
                workload=wl_label,
                policy=policy,
                metrics=self._extract(result),
            )
            records.append(record)
            if progress is not None:
                progress(record)
        return records

    def _jobs(self, cells) -> List[JobSpec]:
        """Lower grid cells to :class:`JobSpec`s (parallel/cached path)."""
        jobs: List[JobSpec] = []
        for _, system, wl_label, builder, policy in cells:
            if not isinstance(builder, WorkloadSpec):
                raise ExecutionError(
                    f"workload {wl_label!r} is a {type(builder).__name__}, not a "
                    "WorkloadSpec; parallel or cached sweeps need declarative "
                    "specs (see repro.exec.WorkloadSpec / sim.runner builders)"
                )
            jobs.append(
                JobSpec(
                    system=system,
                    workload=builder,
                    policy=policy,
                    refs_per_core=self.refs_per_core,
                )
            )
        return jobs

    def _extract(self, result: RunResult) -> Dict[str, float]:
        out = {}
        for metric in self.metrics:
            value = getattr(result, metric)
            out[metric] = float(value)
        return out


def normalize_records(
    records: Iterable[SweepRecord],
    metric: str,
    baseline_policy: str = "non-inclusive",
) -> Dict[tuple, Dict[str, float]]:
    """Normalise a metric per (system, workload) cell to a baseline policy.

    Returns ``{(system, workload): {policy: normalised value}}``.
    """
    cells: Dict[tuple, Dict[str, float]] = {}
    for r in records:
        cells.setdefault((r.system, r.workload), {})[r.policy] = r.metrics[metric]
    out: Dict[tuple, Dict[str, float]] = {}
    for cell, by_policy in cells.items():
        if baseline_policy not in by_policy:
            raise AnalysisError(
                f"cell {cell} is missing baseline policy {baseline_policy!r}"
            )
        base = by_policy[baseline_policy]
        if base == 0:
            raise AnalysisError(f"baseline {metric} is zero in cell {cell}")
        out[cell] = {p: v / base for p, v in by_policy.items()}
    return out


def records_to_csv(
    records: Sequence[SweepRecord],
    path: Optional[Union[str, pathlib.Path]] = None,
) -> str:
    """Serialise records as CSV; optionally also write to ``path``."""
    if not records:
        raise AnalysisError("no records to serialise")
    fieldnames = list(records[0].row().keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for r in records:
        writer.writerow(r.row())
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def load_csv(
    path: Union[str, pathlib.Path],
    on_error: str = "raise",
) -> List[SweepRecord]:
    """Read records back from a CSV written by :func:`records_to_csv`.

    A row with a missing/empty/non-numeric metric value raises
    :class:`AnalysisError` naming the row and column; pass
    ``on_error="skip"`` to drop such rows instead.
    """
    if on_error not in ("raise", "skip"):
        raise AnalysisError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    path = pathlib.Path(path)
    if not path.exists():
        raise AnalysisError(f"no such sweep CSV: {path}")
    records: List[SweepRecord] = []
    with path.open() as fh:
        reader = csv.DictReader(fh)
        for lineno, row in enumerate(reader, start=2):  # line 1 is the header
            try:
                records.append(_parse_csv_row(path, lineno, row))
            except AnalysisError:
                if on_error == "raise":
                    raise
    return records


def _parse_csv_row(path: pathlib.Path, lineno: int, row: Dict) -> SweepRecord:
    meta = {}
    for key in ("system", "workload", "policy"):
        value = row.pop(key, None)
        if value is None or value == "":
            raise AnalysisError(f"{path}:{lineno}: row is missing its {key!r} column")
        meta[key] = value
    metrics: Dict[str, float] = {}
    for k, v in row.items():
        if v is None or v == "":
            raise AnalysisError(
                f"{path}:{lineno}: row ({meta['system']}/{meta['workload']}/"
                f"{meta['policy']}) has no value for metric {k!r}"
            )
        try:
            metrics[k] = float(v)
        except ValueError:
            raise AnalysisError(
                f"{path}:{lineno}: metric {k!r} has non-numeric value {v!r}"
            ) from None
    return SweepRecord(metrics=metrics, **meta)
