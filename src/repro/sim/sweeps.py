"""Parameter-sweep framework with CSV export.

The paper's Section VI-D sensitivity studies are grids over system
parameters (L2:L3 ratio, core count, write/read energy ratio) crossed
with workloads and policies. :class:`Sweep` expresses such grids
declaratively and collects one flat record per run, ready for CSV
export or downstream aggregation — the machinery behind the Fig. 21–23
benchmarks and any new sensitivity study a user wants to script.
"""

from __future__ import annotations

import csv
import io
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import AnalysisError
from .results import RunResult
from .runner import WorkloadBuilder, run_one
from .system import SystemConfig

# A sweep axis: label -> SystemConfig
SystemAxis = Dict[str, SystemConfig]
# workload axis: label -> builder
WorkloadAxis = Dict[str, WorkloadBuilder]

RECORD_METRICS = (
    "epi",
    "static_epi",
    "dynamic_epi",
    "throughput",
    "mpki",
    "llc_writes",
    "llc_misses",
    "loop_block_fraction",
    "redundant_fill_fraction",
    "snoop_traffic",
)


@dataclass(frozen=True)
class SweepRecord:
    """One run's flattened outcome."""

    system: str
    workload: str
    policy: str
    metrics: Dict[str, float]

    def row(self) -> Dict[str, Union[str, float]]:
        return {"system": self.system, "workload": self.workload,
                "policy": self.policy, **self.metrics}


@dataclass
class Sweep:
    """A systems × workloads × policies grid.

    Example
    -------
    >>> sweep = Sweep(
    ...     systems={"1:4": SystemConfig.scaled(l2_kb=8)},
    ...     workloads={"WH1": mix_builder("WH1")},
    ...     policies=("non-inclusive", "lap"),
    ...     refs_per_core=10_000,
    ... )
    >>> records = sweep.run()  # doctest: +SKIP
    """

    systems: SystemAxis
    workloads: WorkloadAxis
    policies: Sequence[str]
    refs_per_core: int = 10_000
    metrics: Sequence[str] = RECORD_METRICS

    def __post_init__(self) -> None:
        if not self.systems or not self.workloads or not self.policies:
            raise AnalysisError("a sweep needs at least one system, workload, and policy")
        if self.refs_per_core <= 0:
            raise AnalysisError("refs_per_core must be positive")

    def size(self) -> int:
        """Number of simulations the sweep will run."""
        return len(self.systems) * len(self.workloads) * len(self.policies)

    def run(
        self,
        progress: Optional[Callable[[SweepRecord], None]] = None,
    ) -> List[SweepRecord]:
        """Execute the grid; returns one record per run (stable order)."""
        records: List[SweepRecord] = []
        for sys_label, system in self.systems.items():
            for wl_label, builder in self.workloads.items():
                for policy in self.policies:
                    result = run_one(system, policy, builder, self.refs_per_core)
                    record = SweepRecord(
                        system=sys_label,
                        workload=wl_label,
                        policy=policy,
                        metrics=self._extract(result),
                    )
                    records.append(record)
                    if progress is not None:
                        progress(record)
        return records

    def _extract(self, result: RunResult) -> Dict[str, float]:
        out = {}
        for metric in self.metrics:
            value = getattr(result, metric)
            out[metric] = float(value)
        return out


def normalize_records(
    records: Iterable[SweepRecord],
    metric: str,
    baseline_policy: str = "non-inclusive",
) -> Dict[tuple, Dict[str, float]]:
    """Normalise a metric per (system, workload) cell to a baseline policy.

    Returns ``{(system, workload): {policy: normalised value}}``.
    """
    cells: Dict[tuple, Dict[str, float]] = {}
    for r in records:
        cells.setdefault((r.system, r.workload), {})[r.policy] = r.metrics[metric]
    out: Dict[tuple, Dict[str, float]] = {}
    for cell, by_policy in cells.items():
        if baseline_policy not in by_policy:
            raise AnalysisError(
                f"cell {cell} is missing baseline policy {baseline_policy!r}"
            )
        base = by_policy[baseline_policy]
        if base == 0:
            raise AnalysisError(f"baseline {metric} is zero in cell {cell}")
        out[cell] = {p: v / base for p, v in by_policy.items()}
    return out


def records_to_csv(
    records: Sequence[SweepRecord],
    path: Optional[Union[str, pathlib.Path]] = None,
) -> str:
    """Serialise records as CSV; optionally also write to ``path``."""
    if not records:
        raise AnalysisError("no records to serialise")
    fieldnames = list(records[0].row().keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for r in records:
        writer.writerow(r.row())
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def load_csv(path: Union[str, pathlib.Path]) -> List[SweepRecord]:
    """Read records back from a CSV written by :func:`records_to_csv`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise AnalysisError(f"no such sweep CSV: {path}")
    records: List[SweepRecord] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            meta = {k: row.pop(k) for k in ("system", "workload", "policy")}
            records.append(
                SweepRecord(
                    system=meta["system"],
                    workload=meta["workload"],
                    policy=meta["policy"],
                    metrics={k: float(v) for k, v in row.items()},
                )
            )
    return records
