"""Exception hierarchy for the LAP reproduction library.

All errors raised intentionally by this package derive from
:class:`ReproError` so callers can distinguish library failures from
programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A cache, hierarchy, or system configuration is invalid.

    Raised for non-power-of-two geometries, zero sizes, mismatched
    hybrid-way partitions, and similar structural problems that would
    otherwise surface as confusing downstream arithmetic errors.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    These indicate invariant violations (e.g. an exclusive LLC holding a
    duplicate of an L2-resident block when it should not) and are bugs
    if they ever escape the test suite.
    """


class InvariantViolation(SimulationError):
    """A machine-checked simulation invariant does not hold
    (``repro.validate``).

    Raised by the invariant checker when the live cache state
    contradicts a per-policy guarantee — strict inclusion, exclusion
    disjointness, LAP's no-fill rule, coherence consistency, or
    dirty-data conservation. The message names the invariant, the
    offending address, and the state that disproves it.
    """


class WorkloadError(ReproError):
    """A workload or trace definition is malformed or cannot be built."""


class AnalysisError(ReproError):
    """Experiment post-processing failed (missing series, empty runs)."""


class ExecutionError(ReproError):
    """The experiment execution engine failed (``repro.exec``).

    Raised for unpicklable/malformed job specs, worker-process failures
    that survive the retry budget, per-job timeouts, and unusable result
    cache directories or entries.
    """


class ServeError(ReproError):
    """The simulation service failed (``repro.serve``).

    Raised for malformed submissions, unknown job ids, results
    requested before a job finishes, unreachable servers, and error
    responses a client receives from a server.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        #: The HTTP status the server maps this error to (and the
        #: status a client observed when re-raising a server error).
        self.status = status


class BackpressureError(ServeError):
    """The service's global queue is full; the submission was shed.

    Corresponds to the wire-level 429 ``{"error": "backpressure"}``
    response. Clients should back off and retry rather than treat this
    as a permanent failure.
    """

    def __init__(self, message: str = "backpressure: server queue is full") -> None:
        super().__init__(message, status=429)


class TelemetryError(ReproError):
    """The observability layer failed (``repro.telemetry``).

    Raised for unwritable or malformed trace files (bad header,
    truncated stream, unknown event type), metric name/type collisions
    in the registry, and unreadable run manifests.
    """
