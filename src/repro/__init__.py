"""repro — reproduction of "LAP: Loop-Block Aware Inclusion Properties
for Energy-Efficient Asymmetric Last Level Caches" (ISCA 2016).

Public API tour
---------------
- :mod:`repro.core` — the paper's contribution: :class:`LAPPolicy`,
  :class:`LhybridPolicy`, the loop-block tracker, and the policy
  registry (:func:`make_policy`).
- :mod:`repro.inclusion` — the inclusion-property framework and the
  baselines (non-inclusive, exclusive, inclusive, FLEXclusion, Dswitch).
- :mod:`repro.cache` / :mod:`repro.hierarchy` — the cache and
  three-level hierarchy substrate (with MOESI snooping and timing).
- :mod:`repro.energy` — Table I technology parameters and the EPI model.
- :mod:`repro.workloads` — synthetic SPEC/PARSEC-like workloads and the
  Table III mixes.
- :mod:`repro.sim` — :class:`SystemConfig`, :class:`Simulator`, and the
  experiment runner.
- :mod:`repro.analysis` — figure/table assembly used by the benchmark
  harness.

Quickstart
----------
>>> from repro import SystemConfig, simulate, make_workload
>>> system = SystemConfig.scaled()
>>> wl = make_workload("WH1", system)
>>> result = simulate(system, "lap", wl, refs_per_core=20_000)
>>> result.epi > 0
True
"""

from .core import LAPPolicy, LhybridPolicy, make_policy, policy_names
from .energy import LLCEnergyModel, SRAM, STT_RAM
from .errors import (
    AnalysisError,
    ConfigurationError,
    ExecutionError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
from .sim import RunResult, Simulator, SystemConfig, simulate
from .workloads import (
    ScaleContext,
    Workload,
    benchmark_names,
    make_duplicate,
    make_multiprogrammed,
    make_multithreaded,
    make_table3_mix,
)

__version__ = "1.0.0"


def make_workload(name: str, system: SystemConfig, seed: int = 0) -> Workload:
    """Build a workload by name against a system's geometry.

    ``name`` may be a Table III mix (``"WL1"``..``"WH5"``), a SPEC-like
    benchmark (run as duplicate copies on every core), or a PARSEC-like
    benchmark (run multithreaded).
    """
    from .workloads.mixes import TABLE3_MIXES
    from .workloads.parsec import PARSEC_BENCHMARKS
    from .workloads.spec import SPEC_BENCHMARKS

    ctx = system.scale_context()
    ncores = system.hierarchy.ncores
    if name in TABLE3_MIXES:
        return make_table3_mix(name, ctx, seed=seed)
    if name in SPEC_BENCHMARKS:
        return make_duplicate(name, ctx, ncores=ncores, seed=seed)
    if name in PARSEC_BENCHMARKS:
        return make_multithreaded(name, ctx, nthreads=ncores, seed=seed)
    raise WorkloadError(
        f"unknown workload {name!r}: not a Table III mix, SPEC benchmark, "
        "or PARSEC benchmark"
    )


__all__ = [
    "__version__",
    "LAPPolicy",
    "LhybridPolicy",
    "make_policy",
    "policy_names",
    "SystemConfig",
    "Simulator",
    "simulate",
    "RunResult",
    "LLCEnergyModel",
    "SRAM",
    "STT_RAM",
    "ScaleContext",
    "Workload",
    "make_workload",
    "make_multiprogrammed",
    "make_duplicate",
    "make_table3_mix",
    "make_multithreaded",
    "benchmark_names",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "WorkloadError",
    "AnalysisError",
    "ExecutionError",
    "JobSpec",
    "WorkloadSpec",
    "ResultCache",
    "execute_jobs",
]
