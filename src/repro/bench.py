"""Hot-path throughput benchmarking across tag-store backends.

One bench run measures the probe-free simulation rate (accesses/sec,
best of ``reps`` to shed scheduler noise) for each requested policy on
each requested backend, and appends the result as one timestamped,
backend-tagged entry to ``BENCH_hotpath.json``. The entry format is
append-only history: re-running the bench never overwrites earlier
measurements, so before/after comparisons across refactors stay in the
file (ROADMAP item 1 asks exactly for that record).

File schema (version 2)::

    {
      "schema": 2,
      "legacy": {...},          # the pre-refactor flat record, if any
      "entries": [
        {
          "timestamp": "2026-08-08T12:34:56Z",
          "workload": "WL1", "refs_per_core": 30000, "reps": 5,
          "backends": ["object", "soa"],
          "accesses_per_sec": {"lap": {"object": 101873, "soa": 317849}},
          "speedup_soa_vs_object": {"lap": 3.12},
          ...
        }, ...
      ]
    }

A version-1 file (one flat dict, no ``entries``) is migrated in place
on first append: the old record moves under ``"legacy"``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .kernel import numpy_available
from .sim.simulator import Simulator
from .sim.system import SystemConfig

#: the kernel-eligible policies the hot-path bench tracks by default —
#: one per batched-kernel mode (non-inclusion, exclusion, LAP).
BENCH_POLICIES = ("non-inclusive", "exclusive", "lap")

DEFAULT_REFS = 30_000
DEFAULT_REPS = 5


def measure_throughput(
    system: SystemConfig,
    policy: str,
    workload_name: str = "WL1",
    refs_per_core: int = DEFAULT_REFS,
    reps: int = DEFAULT_REPS,
    seed: int = 7,
) -> float:
    """Best-of-``reps`` probe-free accesses/sec for one (policy, system).

    Each rep builds a fresh simulator (cold caches — the measurement is
    of the engine, not of a warmed state) and times ``Simulator.run``
    wall-to-wall, workload generation included. Best-of is deliberate:
    the floor of a throughput measurement is noise, the ceiling is the
    engine.
    """
    from .workloads.mixes import make_table3_mix

    best = 0.0
    for _ in range(max(1, reps)):
        workload = make_table3_mix(workload_name, system.scale_context(), seed=seed)
        sim = Simulator(system, policy, workload)
        start = time.perf_counter()
        sim.run(refs_per_core)
        elapsed = time.perf_counter() - start
        rate = (refs_per_core * workload.ncores) / elapsed
        if rate > best:
            best = rate
    return best


def run_hotpath_bench(
    policies: Sequence[str] = BENCH_POLICIES,
    backends: Optional[Sequence[str]] = None,
    *,
    workload: str = "WL1",
    refs_per_core: int = DEFAULT_REFS,
    reps: int = DEFAULT_REPS,
    seed: int = 7,
) -> dict:
    """Measure every (policy, backend) cell and return one bench entry.

    ``backends`` defaults to ``("object", "soa")`` when numpy is
    importable and ``("object",)`` otherwise — the entry's
    ``"backends"`` list records what actually ran, so a numpy-less
    environment produces an honestly-labelled object-only entry rather
    than a silently identical "soa" column.
    """
    if backends is None:
        backends = ("object", "soa") if numpy_available() else ("object",)
    rates: Dict[str, Dict[str, int]] = {}
    for policy in policies:
        rates[policy] = {}
        for backend in backends:
            system = SystemConfig.scaled().probe_free().with_tag_backend(backend)
            rates[policy][backend] = round(
                measure_throughput(
                    system,
                    policy,
                    workload_name=workload,
                    refs_per_core=refs_per_core,
                    reps=reps,
                    seed=seed,
                )
            )
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": workload,
        "refs_per_core": refs_per_core,
        "reps": reps,
        "seed": seed,
        "backends": list(backends),
        "numpy_available": numpy_available(),
        "accesses_per_sec": rates,
    }
    if "object" in backends and "soa" in backends:
        entry["speedup_soa_vs_object"] = {
            policy: round(rates[policy]["soa"] / rates[policy]["object"], 2)
            for policy in policies
        }
    return entry


def load_bench_file(path: Union[str, Path]) -> dict:
    """Read ``BENCH_hotpath.json`` in schema-2 form (migrating v1)."""
    path = Path(path)
    if not path.exists():
        return {"schema": 2, "entries": []}
    data = json.loads(path.read_text())
    if "entries" not in data:
        # Version-1 flat record: preserve it under "legacy".
        data = {"schema": 2, "legacy": data, "entries": []}
    data.setdefault("schema", 2)
    return data


#: Per-process uniquifier for bench temp files (same pattern as the
#: result cache's atomic writes).
_tmp_counter = itertools.count()


def append_entry(path: Union[str, Path], entry: dict) -> dict:
    """Append one bench entry to ``path`` and return the full document.

    The write is crash-safe: the new document lands in a unique temp
    file in the same directory and is moved over the old one with
    ``os.replace``, so an interrupted bench run (ctrl-C, OOM-kill mid
    ``write_text``) can truncate the temp file but never the history —
    ``BENCH_hotpath.json`` is the repo's only append-only perf record
    and a half-written JSON file would lose every prior entry.
    """
    path = Path(path)
    data = load_bench_file(path)
    data["entries"].append(entry)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp")
    try:
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    return data


def entry_rows(entry: dict) -> List[list]:
    """Flatten one entry into (policy, backend..., speedup) table rows."""
    backends = entry["backends"]
    rows = []
    for policy, rates in sorted(entry["accesses_per_sec"].items()):
        row: List[object] = [policy]
        row += [rates.get(b, "-") for b in backends]
        speed = entry.get("speedup_soa_vs_object", {}).get(policy)
        row.append(f"{speed:.2f}x" if speed is not None else "-")
        rows.append(row)
    return rows
