#!/usr/bin/env python
"""Quickstart: compare inclusion policies on one workload mix.

Builds the scaled STT-RAM system, runs the paper's WH1 mix (omnetpp +
xalancbmk + zeusmp + libquantum — a loop-block-heavy, write-heavy-under-
exclusion mix) under the five Table IV policies, and prints the
normalised results: LAP should beat both traditional inclusion
properties in energy while matching exclusion's miss rate.

Run:  python examples/quickstart.py [refs_per_core]
"""

import sys

from repro import SystemConfig, make_workload, simulate
from repro.analysis import render_table

POLICIES = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap")


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    system = SystemConfig.scaled()
    print(f"system: {system.label}  (LLC {system.hierarchy.llc.size_bytes // 1024}KB "
          f"{system.hierarchy.llc.tech.name}, {system.hierarchy.ncores} cores)")
    print(f"workload: WH1 = omnetpp + xalancbmk + zeusmp + libquantum, "
          f"{refs} refs/core\n")

    results = {}
    for policy in POLICIES:
        # Workloads are stateful streams: rebuild (same seed -> identical
        # trace) for every policy so the comparison is exact.
        workload = make_workload("WH1", system)
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)

    base = results["non-inclusive"]
    rows = []
    for policy, r in results.items():
        rows.append(
            [
                policy,
                r.epi / base.epi,
                r.dynamic_epi / base.dynamic_epi,
                r.llc_writes / base.llc_writes,
                r.mpki / base.mpki,
                r.throughput / base.throughput,
            ]
        )
    print(
        render_table(
            "WH1 under each policy (normalised to non-inclusive)",
            ["policy", "EPI", "dynamic EPI", "LLC writes", "MPKI", "throughput"],
            rows,
        )
    )

    lap = results["lap"]
    print(
        f"\nLAP saves {1 - lap.epi / base.epi:.1%} energy vs non-inclusion and "
        f"{1 - lap.epi / results['exclusive'].epi:.1%} vs exclusion on this mix, "
        f"with zero LLC data-fills ({lap.llc.fill_writes}) and "
        f"{lap.llc.clean_victim_writes} selective clean writebacks."
    )


if __name__ == "__main__":
    main()
