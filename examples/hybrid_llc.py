#!/usr/bin/env python
"""Hybrid SRAM/STT-RAM LLC with loop-block-aware placement (Section IV).

Builds the hybrid system (4 SRAM ways + 12 STT-RAM ways per set, as in
Table II), runs a write-heavy mix under LAP and under every Lhybrid
placement stage, and shows where the writes land: Lhybrid should push
dirty (non-loop) traffic into SRAM and loop-blocks into STT-RAM,
cutting STT-RAM write energy.

Run:  python examples/hybrid_llc.py [mix] [refs_per_core]
"""

import sys

from repro import SystemConfig, make_workload, simulate
from repro.analysis import render_table

STAGES = ("non-inclusive", "exclusive", "lap", "lap+winv", "lap+loopstt",
          "lap+nloopsram", "lhybrid")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "WL3"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    system = SystemConfig.scaled(hybrid=True)
    llc = system.hierarchy.llc
    print(
        f"hybrid LLC: {llc.sram_bytes // 1024}KB SRAM ({llc.sram_ways} ways) + "
        f"{llc.stt_bytes // 1024}KB STT-RAM ({llc.assoc - llc.sram_ways} ways), "
        f"mix {mix}, {refs} refs/core\n"
    )

    results = {}
    for policy in STAGES:
        workload = make_workload(mix, system)
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)

    base = results["non-inclusive"]
    rows = []
    for policy, r in results.items():
        total_writes = max(1, r.llc.data_writes)
        rows.append(
            [
                policy,
                r.epi / base.epi,
                r.llc.data_writes_stt / total_writes,
                r.llc.migrations,
                getattr_or_zero(r, policy),
            ]
        )
    print(
        render_table(
            f"{mix} on the hybrid LLC (EPI normalised to non-inclusive)",
            ["policy", "EPI", "STT write share", "migrations", "winv redirects"],
            rows,
        )
    )
    lh = results["lhybrid"]
    print(
        f"\nLhybrid: {1 - lh.epi / base.epi:.1%} energy saving vs non-inclusion, "
        f"{1 - lh.epi / results['lap'].epi:.1%} vs plain LAP on the same hybrid."
    )


def getattr_or_zero(result, policy):
    """Winv redirect count is recorded on the policy; surface it via the
    result's extra dict when present (0 for policies without the stage)."""
    return result.extra.get("winv_redirects", 0)


if __name__ == "__main__":
    main()
