#!/usr/bin/env python
"""Workload characterisation: loop-blocks, redundant fills, WL/WH.

Reproduces the paper's Section II motivation interactively: for each
SPEC-like benchmark it measures

- the loop-block fraction and clean-trip-count buckets (Fig. 4),
- the redundant LLC data-fill fraction under non-inclusion (Fig. 6),
- the relative misses/writes of an exclusive LLC (Fig. 2c),

then classifies the benchmark as WL (fewer writes under exclusion) or
WH and says which traditional inclusion property it favours on an
STT-RAM LLC.

Run:  python examples/workload_characterization.py [refs_per_core]
"""

import sys

from repro import SystemConfig, benchmark_names, make_workload, simulate
from repro.analysis import classify_wl_wh, favors_exclusion, render_table


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    system = SystemConfig.scaled()
    rows = []
    for bench in benchmark_names():
        runs = {}
        for policy in ("non-inclusive", "exclusive"):
            workload = make_workload(bench, system)
            runs[policy] = simulate(system, policy, workload, refs_per_core=refs)
        noni, ex = runs["non-inclusive"], runs["exclusive"]
        buckets = noni.loop.ctc_buckets()
        big_ctc = buckets.get("ctc>=5", 0)
        total_ctc = max(1, sum(buckets.values()))
        rows.append(
            [
                bench,
                noni.loop_block_fraction,
                big_ctc / total_ctc,
                noni.redundant_fill_fraction,
                ex.llc_misses / max(1, noni.llc_misses),
                ex.llc_writes / max(1, noni.llc_writes),
                classify_wl_wh(noni, ex),
                "exclusive" if favors_exclusion(noni, ex) else "non-inclusive",
            ]
        )
    print(
        render_table(
            "SPEC-like benchmark characterisation (paper Figs. 2/4/6)",
            [
                "benchmark",
                "loop_frac",
                "ctc>=5 share",
                "redundant_fill",
                "Mrel(ex)",
                "Wrel(ex)",
                "class",
                "favours",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape: omnetpp/xalancbmk loop-heavy and favouring "
        "non-inclusion; libquantum >80% redundant fills and favouring "
        "exclusion; the favoured policy flips with Wrel — no dominant "
        "traditional inclusion property."
    )


if __name__ == "__main__":
    main()
