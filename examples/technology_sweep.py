#!/usr/bin/env python
"""Write/read energy-ratio sweep across memory technologies (Fig. 23).

The paper's key generalisation claim: LAP's benefit is predicted by the
*write/read energy ratio* of the LLC technology alone, so the policy
applies to any asymmetric memory (PCM, R-RAM, dense STT variants). This
example sweeps the ratio with read energy and leakage fixed, and also
evaluates the eleven published STT-RAM design points the paper overlays
on its curve.

Run:  python examples/technology_sweep.py [refs_per_core]
"""

import sys

from repro import STT_RAM, SystemConfig, make_workload, simulate
from repro.analysis import render_table
from repro.energy import PUBLISHED_CONFIGS

MIXES = ("WL2", "WH1", "WH5")


def lap_saving(system, refs):
    """Average LAP EPI saving over non-inclusion across MIXES."""
    total = 0.0
    for mix in MIXES:
        runs = {}
        for policy in ("non-inclusive", "lap"):
            workload = make_workload(mix, system)
            runs[policy] = simulate(system, policy, workload, refs_per_core=refs)
        total += 1 - runs["lap"].epi / runs["non-inclusive"].epi
    return total / len(MIXES)


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    rows = []
    for ratio in (2, 3.3, 5, 8, 12, 16, 20, 25):
        system = SystemConfig.scaled(tech=STT_RAM.with_write_read_ratio(ratio))
        rows.append([f"{ratio:g}x", lap_saving(system, refs)])
    print(
        render_table(
            "LAP EPI saving vs non-inclusion as write energy scales "
            "(read energy & leakage fixed)",
            ["write/read ratio", "EPI saving"],
            rows,
        )
    )

    rows = []
    for cfg in PUBLISHED_CONFIGS:
        system = SystemConfig.scaled(tech=cfg.technology())
        rows.append(
            [cfg.label, cfg.citation, cfg.write_read_ratio, lap_saving(system, refs)]
        )
    print()
    print(
        render_table(
            "Published STT-RAM design points (Fig. 23 overlay)",
            ["config", "citation", "write/read ratio", "EPI saving"],
            rows,
        )
    )
    print(
        "\nExpected shape: savings grow monotonically with the ratio and are "
        "already positive at 2x — the design points track the curve, with "
        "small deviations for configs whose latency/leakage differ."
    )


if __name__ == "__main__":
    main()
