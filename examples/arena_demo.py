#!/usr/bin/env python
"""Policy arena walkthrough: the cross-paper grid in three steps.

1. Prints the registry catalog — every policy with its source paper,
   kernel eligibility, and curated-set membership (the same data
   behind ``repro list`` and DESIGN.md §15).
2. Runs the arena grid on one Table III mix: every arena policy on a
   bit-identical trace, EPI / throughput / write classes normalised to
   the non-inclusive baseline (``repro compare --arena`` from Python).
3. Shows the rival mechanisms' own counters (``RunResult.extra``):
   reuse-detector bypass/fill decisions, rd-copyback gating, and the
   static energy ways-off forgoes by powering ways down.

Run:  python examples/arena_demo.py [mix] [refs_per_core]
"""

import sys

from repro import SystemConfig, make_workload, simulate
from repro.analysis import render_mapping_table, render_table
from repro.analysis.arena import arena_policies, grid_rows
from repro.arena import registry


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "WL2"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000
    system = SystemConfig.scaled()

    # ---- 1. the catalog ----------------------------------------------
    rows = [
        [e["name"], e["kernel"], "yes" if e["arena"] else "-", e["paper"]]
        for e in registry.catalog_rows()
    ]
    print(render_table("the policy registry", ["name", "kernel", "arena", "paper"], rows))
    print()

    # ---- 2. the arena grid -------------------------------------------
    policies = arena_policies()
    results = {}
    for policy in policies:
        workload = make_workload(mix, system, seed=7)
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)
    print(render_mapping_table(
        f"arena grid: {mix} on {system.label} (normalised to {policies[0]})",
        grid_rows(results),
        row_label="policy",
    ))
    print()

    # ---- 3. the rivals' own counters ---------------------------------
    rd = results["reuse-detector"].extra
    cb = results["rd-copyback"].extra
    wo = results["ways-off"].extra
    print(f"reuse-detector: {rd['reuse_bypasses']:.0f} fills bypassed, "
          f"{rd['reuse_fills']:.0f} reuse-confirmed fills")
    print(f"rd-copyback:    {cb['rd_copybacks']:.0f} clean victims copied back, "
          f"{cb['rd_copyback_drops']:.0f} dropped (no measured reuse)")
    print(f"ways-off:       {wo['llc_ways_off']:.0f}/{wo['llc_ways_total']:.0f} ways dark, "
          f"{wo['llc_static_saved_j']:.3e} J static energy saved")


if __name__ == "__main__":
    main()
