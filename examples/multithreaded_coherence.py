#!/usr/bin/env python
"""Multithreaded workloads over MOESI snooping coherence (Fig. 20).

Runs PARSEC-like multithreaded workloads: threads share regions (with
upgrades, invalidations, and cache-to-cache transfers flowing over the
snooping bus) while the inclusion policy governs the shared LLC. Prints
total LLC energy, runtime, and coherence traffic per policy.

Run:  python examples/multithreaded_coherence.py [benchmark] [refs]
"""

import sys

from repro import SystemConfig, make_workload, simulate
from repro.analysis import render_table
from repro.workloads import PARSEC_ORDER

POLICIES = ("non-inclusive", "exclusive", "lap")


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    if bench not in PARSEC_ORDER:
        raise SystemExit(f"unknown benchmark {bench!r}; choose from {PARSEC_ORDER}")

    system = SystemConfig.scaled()
    results = {}
    for policy in POLICIES:
        workload = make_workload(bench, system)  # multithreaded: shared regions
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)

    base = results["non-inclusive"]
    rows = []
    for policy, r in results.items():
        c = r.coherence
        rows.append(
            [
                policy,
                r.total_energy / base.total_energy,
                base.latency / r.latency,
                r.snoop_traffic / max(1, base.snoop_traffic),
                c.cache_to_cache,
                c.upgrades,
            ]
        )
    print(
        render_table(
            f"{bench} x {system.hierarchy.ncores} threads "
            "(energy & snoop traffic normalised to non-inclusive)",
            ["policy", "LLC energy", "speedup", "snoop traffic", "c2c", "upgrades"],
            rows,
        )
    )
    lap = results["lap"]
    print(
        f"\nLAP: {1 - lap.total_energy / base.total_energy:.1%} LLC energy saving "
        f"vs non-inclusion on {bench} "
        f"({1 - lap.total_energy / results['exclusive'].total_energy:.1%} vs exclusion)."
    )


if __name__ == "__main__":
    main()
