#!/usr/bin/env python
"""Extensions walkthrough: trace capture/replay + dead-write bypass.

1. Captures a streaming benchmark's reference stream to a trace file
   and replays it — the replayed simulation is bit-identical to the
   live one (the mechanism for archiving results and importing external
   traces).
2. Composes LAP with the dead-write bypass predictor (the DASCA-style
   technique the paper calls orthogonal in Section VII) and shows the
   write traffic and energy compound.

Run:  python examples/extensions_demo.py [refs_per_core]
"""

import sys
import tempfile
from pathlib import Path

from repro import SystemConfig, Workload, make_workload, simulate
from repro.analysis import render_table
from repro.workloads.tracefile import load_trace, save_trace


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    system = SystemConfig.scaled()

    # ---- 1. capture & replay -----------------------------------------
    live = make_workload("bwaves", system, seed=42)
    captured = make_workload("bwaves", system, seed=42)
    with tempfile.TemporaryDirectory() as tmp:
        paths = [
            save_trace(Path(tmp) / f"core{i}", gen, refs)
            for i, gen in enumerate(captured.generators)
        ]
        replay = Workload(
            name="bwaves-replay",
            kind="multiprogrammed",
            generators=[load_trace(p) for p in paths],
            benchmarks=live.benchmarks,
        )
        r_live = simulate(system, "exclusive", live, refs_per_core=refs)
        r_replay = simulate(system, "exclusive", replay, refs_per_core=refs)
    identical = r_live.llc.snapshot() == r_replay.llc.snapshot()
    print(f"capture/replay: LLC statistics identical = {identical}\n")

    # ---- 2. dead-write bypass composition -----------------------------
    results = {}
    for policy in ("non-inclusive", "exclusive", "exclusive+dwb", "lap", "lap+dwb"):
        workload = make_workload("bwaves", system, seed=42)
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)
    base = results["non-inclusive"]
    rows = [
        [p, r.epi / base.epi, r.llc_writes / max(1, base.llc_writes)]
        for p, r in results.items()
    ]
    print(
        render_table(
            "bwaves (streaming): dead-write bypass composition "
            "(normalised to non-inclusive)",
            ["policy", "EPI", "LLC writes"],
            rows,
        )
    )
    lap, lapdwb = results["lap"], results["lap+dwb"]
    print(
        f"\nLAP+DWB removes a further "
        f"{1 - lapdwb.llc_writes / max(1, lap.llc_writes):.1%} of LAP's writes — "
        "the bypass is orthogonal to selective inclusion, as Section VII claims."
    )


if __name__ == "__main__":
    main()
