#!/usr/bin/env python
"""Benchmark-suite walkthrough: named sets, the trace corpus, geomean.

1. Lists the registered benchmark sets (the data behind
   ``repro suite list``): the Table III mixes, the SPEC-like int/fp
   splits, trait families, the PARSEC pool.
2. Runs one set through the exec pool with a result cache and prints
   the per-policy geomean summary normalised to the baseline — then
   runs it *again* to show the cache-warm rerun simulates nothing.
3. Captures two benchmark streams into a content-addressed trace
   corpus, verifies it, and replays the whole corpus as a suite
   (``repro corpus`` + ``repro suite run corpus`` from Python).

Run:  python examples/suite_demo.py [set] [refs_per_core] [work_dir]
"""

import pathlib
import sys
import tempfile

from repro import SystemConfig
from repro.analysis import render_table
from repro.exec import ResultCache
from repro.suite import (
    corpus_set,
    result_text,
    run_suite,
    sets,
    write_result_file,
)
from repro.workloads import TraceCorpus, build_benchmark


def main() -> None:
    set_name = sys.argv[1] if len(sys.argv) > 1 else "loop"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 4_000
    work_dir = pathlib.Path(
        sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(prefix="suite-demo-")
    )
    system = SystemConfig.scaled(ncores=2, llc_kb=64, l2_kb=8)
    policies = ("non-inclusive", "exclusive", "lap")

    # ---- 1. the set registry -----------------------------------------
    rows = [[s.name, ",".join(s.aliases) or "-", len(s), s.description]
            for s in sets()]
    print(render_table("benchmark sets", ["name", "aliases", "n", "description"], rows))
    print()

    # ---- 2. a suite run, cold then cache-warm ------------------------
    cache = ResultCache(work_dir / "cache")
    cold = run_suite(set_name, system, policies=policies,
                     refs_per_core=refs, cache=cache)
    print(result_text(cold))
    warm = run_suite(set_name, system, policies=policies,
                     refs_per_core=refs, cache=cache)
    assert warm.simulated == 0, "cache-warm rerun must not simulate"
    print(f"warm rerun: {warm.cache_hits} job(s) all from cache, "
          f"0 simulated ({warm.wall_s:.2f}s)")
    artefact = write_result_file(cold, work_dir / "results")
    print(f"result artefact: {artefact}")
    print()

    # ---- 3. the trace corpus -----------------------------------------
    corpus = TraceCorpus(work_dir / "corpus", create=True)
    ctx = system.scale_context()
    for bench in ("bzip2", "libquantum"):
        entry = corpus.capture(build_benchmark(bench, ctx, seed=7), refs, name=bench)
        print(f"captured {entry.name}: {entry.length} refs -> {entry.digest[:12]}")
    problems = corpus.verify()
    assert not problems, problems
    print(f"corpus verifies clean ({len(corpus)} traces)")
    replayed = run_suite(corpus_set(corpus), system, policies=policies,
                         refs_per_core=refs, cache=cache, corpus=corpus)
    summary = replayed.geomean_summary()
    print(f"corpus replay geomean EPI vs {replayed.baseline}: "
          + ", ".join(f"{p}={summary[p]['epi']:.3f}" for p in policies))


if __name__ == "__main__":
    main()
