"""Simulation-as-a-service walkthrough: run one Fig. 14 cell through
``repro serve`` twice and watch the dedup machinery at work.

The script boots a service on an ephemeral port (background thread),
submits the WL2 / LAP cell of the paper's Fig. 14 policy grid, waits
for the result, then demonstrates the two layers of request dedup:

1. resubmitting to the *same* server coalesces onto the finished job
   record (no queue slot, no simulation);
2. a *fresh* server instance sharing the cache directory — the restart
   / second-process case — answers from the content-addressed result
   cache at submission time, again without simulating.

It exits non-zero if either layer simulated a second time, so it
doubles as the CI smoke test (``make serve-demo``).

Usage: python examples/serve_demo.py [refs_per_core]
"""

import sys
import tempfile

from repro.exec import JobSpec, ResultCache, WorkloadSpec
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.sim import SystemConfig


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 4000

    # One cell of Fig. 14: the WL2 mix under LAP on the 4-core STT system.
    cell = JobSpec(
        system=SystemConfig.scaled(),
        workload=WorkloadSpec.mix("WL2"),
        policy="lap",
        refs_per_core=refs,
    )
    print(f"Fig. 14 cell WL2/lap, {refs} refs/core — job id {cell.key()[:16]}…")

    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as cache_dir:
        with serve_in_thread(
            ServeConfig(port=0, cache=ResultCache(cache_dir))
        ) as handle:
            client = ServeClient(port=handle.port, client_id="demo")
            first = client.submit(cell)
            print(f"submit #1: state={first['state']}")
            done = client.wait(first["id"], timeout=600)
            print(f"           finished via {done['source']} "
                  f"in {done['wall_s']:.2f}s")
            result = client.result(first["id"])

            second = client.submit(cell)
            print(f"submit #2: state={second['state']} "
                  f"(coalesced onto the live record: "
                  f"coalesced={second['coalesced']})")
            assert second["state"] == "done", "resubmission must not queue"
            assert second["coalesced"] >= 1, "resubmission must coalesce"

            metrics = ServeClient(port=handle.port).metrics()["serve"]
            assert metrics["jobs"]["total"] == 1, "two submissions, one record"

        # A brand-new server on the same cache dir: the restarted-server
        # (or second-process) case. The submission itself must be
        # answered from the warm cache — state done before any queueing.
        with serve_in_thread(
            ServeConfig(port=0, cache=ResultCache(cache_dir))
        ) as handle:
            client = ServeClient(port=handle.port, client_id="demo")
            third = client.submit(cell)
            print(f"submit #3 (fresh server, shared cache): "
                  f"state={third['state']} source={third['source']}")
            assert third["state"] == "done", "warm cache must short-circuit"
            assert third["source"] == "cache", "result must come from cache"
            replay = client.result(third["id"])
            assert replay.to_dict() == result.to_dict(), \
                "cached result must be bit-identical"

    print(f"\nall three submissions answered by ONE simulation "
          f"(epi={result.epi:.4g}); dedup + cache hit verified")


if __name__ == "__main__":
    main()
