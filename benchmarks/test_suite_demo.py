"""Benchmark-suite demo: a named set through the pool, geomean summary.

The harness-level record behind ``repro suite run`` (DESIGN.md §16):
runs the loop-heavy set cold through the exec layer with a result
cache, asserts the cache-warm rerun simulates nothing, and emits the
per-policy geomean table as the ``suite_geomean`` experiment artefact.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.exec import ResultCache
from repro.sim.system import SystemConfig
from repro.suite import result_text, run_suite

SET_NAME = "loop"
POLICIES = ("non-inclusive", "exclusive", "lap")
REFS = 4_000
SEED = 7


def assemble_demo() -> dict:
    system = SystemConfig.scaled()
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        cold = run_suite(SET_NAME, system, policies=POLICIES,
                         refs_per_core=REFS, seed=SEED, cache=cache)
        warm = run_suite(SET_NAME, system, policies=POLICIES,
                         refs_per_core=REFS, seed=SEED, cache=cache)
        return {
            "text": result_text(cold),
            "summary": cold.geomean_summary(),
            "failures": dict(cold.failures),
            "cold": (cold.cache_hits, cold.simulated),
            "warm": (warm.cache_hits, warm.simulated),
        }


def test_suite_demo(benchmark, emit):
    from conftest import run_once

    record = run_once(benchmark, assemble_demo)

    # Every member of the set ran, and the warm rerun was pure cache.
    assert not record["failures"]
    assert record["cold"][1] > 0
    assert record["warm"][1] == 0 and record["warm"][0] == record["cold"][0] + record["cold"][1]

    # The baseline normalises to itself, and on the loop-heavy class
    # LAP beats non-inclusion on energy (the paper's headline claim).
    summary = record["summary"]
    assert abs(summary["non-inclusive"]["epi"] - 1.0) < 1e-12
    assert summary["lap"]["epi"] < 1.0

    emit("suite_geomean", record["text"])
