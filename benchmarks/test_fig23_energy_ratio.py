"""Fig. 23: EPI savings vs write/read energy ratio + published configs."""

from conftest import run_once

from repro.analysis.figures import fig23_energy_ratio
from repro.analysis.tables import render_mapping_table


def test_fig23_energy_ratio(benchmark, emit):
    curve, published = run_once(benchmark, fig23_energy_ratio)
    emit(
        "fig23_energy_ratio",
        render_mapping_table(
            "Fig. 23: LAP EPI saving over non-inclusion vs write/read ratio "
            "(read energy and leakage fixed)",
            curve,
            row_label="scaling point",
        )
        + "\n\n"
        + render_mapping_table(
            "Fig. 23 overlay: published STT-RAM design points",
            published,
            row_label="config",
        ),
    )
    points = sorted(curve.values(), key=lambda c: c["write_read_ratio"])
    savings = [p["epi_saving"] for p in points]
    # Paper: savings grow with the ratio and are positive already at 2x
    # (17% in the paper's setup).
    assert savings == sorted(savings)
    assert savings[0] > 0.0
    assert savings[-1] > savings[0] + 0.1
    # Published design points land near the curve: saving within a few
    # points of the nearest scaling sample.
    for cols in published.values():
        nearest = min(points, key=lambda p: abs(p["write_read_ratio"] - cols["write_read_ratio"]))
        assert abs(cols["epi_saving"] - nearest["epi_saving"]) < 0.12
