"""Fig. 17: redundant LLC data-fills of the non-inclusive LLC per mix."""

from conftest import run_once

from repro.analysis.figures import fig17_redundant_fill_mixes
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig17_redundant_fill_mixes(benchmark, emit):
    rows = run_once(benchmark, fig17_redundant_fill_mixes)
    avg = summarize_columns(rows)["redundant_fill_fraction"]
    emit(
        "fig17_redundant_fill_mixes",
        render_mapping_table(
            "Fig. 17: redundant fills / total fills under non-inclusion",
            rows,
            row_label="mix",
        )
        + f"\naverage: {avg:.3f} (paper: 0.096 average, >0.3 for some mixes)",
    )
    fracs = [c["redundant_fill_fraction"] for c in rows.values()]
    assert 0.03 < avg < 0.6
    assert max(fracs) > 0.3, "some mixes should exceed 30% redundant fills"
    # WL2 contains libquantum + GemsFDTD: heavily redundant fills.
    assert rows["WL2"]["redundant_fill_fraction"] > 0.3
