"""Fig. 21: sensitivity to the L2:L3 capacity ratio."""

from conftest import run_once

from repro.analysis.figures import fig21_capacity_ratio
from repro.analysis.tables import render_mapping_table


def test_fig21_ratio_sensitivity(benchmark, emit):
    rows = run_once(benchmark, fig21_capacity_ratio)
    emit(
        "fig21_ratio_sensitivity",
        render_mapping_table(
            "Fig. 21: LLC EPI vs L2:L3 ratio (normalised to non-inclusive, "
            "averaged over WL2/WL4/WH1/WH5)",
            rows,
            row_label="configuration",
        ),
    )
    # Paper: exclusion's (and LAP's) advantage over non-inclusion grows
    # with the L2:L3 ratio, because duplicate capacity waste grows.
    assert rows["L2:L3=1:2"]["exclusive"] < rows["L2:L3=1:8"]["exclusive"] + 0.02
    assert rows["L2:L3=1:2"]["lap"] < rows["L2:L3=1:8"]["lap"]
    # LAP keeps saving energy at every ratio, including the big-LLC
    # configuration (paper: ~10% at iso-area 24MB).
    for label, cols in rows.items():
        assert cols["lap"] < 1.0, label
