"""Extension: the cross-paper policy arena on the Table III mixes.

No paper counterpart — this grid extends Figs. 14/15 to every policy
the registry marks as an arena member, including the rivals imported
from other papers (reuse-detector, rd-copyback, ways-off). Two
artefacts: EPI and total-LLC-write ratios, both normalised to
non-inclusive per mix.
"""

from conftest import run_once

from repro.analysis.arena import arena_over_mixes
from repro.analysis.figures import DEFAULT_BENCH_REFS
from repro.analysis.tables import render_mapping_table, summarize_columns


def _measure():
    return arena_over_mixes(max(6000, DEFAULT_BENCH_REFS // 2))


def test_arena_grid(benchmark, emit):
    epi, writes = run_once(benchmark, _measure)
    emit(
        "arena_epi",
        render_mapping_table(
            "Arena: EPI normalised to non-inclusive (Table III mixes)",
            epi,
            row_label="mix",
        )
        + f"\naverages: {summarize_columns(epi)}",
    )
    emit(
        "arena_writes",
        render_mapping_table(
            "Arena: LLC writes normalised to non-inclusive (Table III mixes)",
            writes,
            row_label="mix",
        )
        + f"\naverages: {summarize_columns(writes)}",
    )
    avg_epi = summarize_columns(epi)
    avg_writes = summarize_columns(writes)
    # The write-avoiding rivals must actually avoid writes on average...
    assert avg_writes["reuse-detector"] < 1.0
    assert avg_writes["rd-copyback"] < 1.0
    # ... while ways-off trades leakage for extra misses/writes, so its
    # EPI win (if any) must come despite >= baseline write traffic.
    assert avg_writes["ways-off"] >= 0.95
    # LAP remains the headline energy result of the reproduction.
    assert avg_epi["lap"] < 1.0
