"""Tables I–IV: static regenerations of the paper's setup tables."""

from conftest import run_once

from repro.analysis.figures import table1_rows, table2_rows, table3_rows, table4_rows
from repro.analysis.tables import render_table
from repro.sim import SystemConfig


def test_table1_technology(benchmark, emit):
    rows = run_once(benchmark, table1_rows)
    emit(
        "table1_technology",
        render_table(
            "Table I: 2MB cache bank characteristics (22nm, 350K)",
            ["metric", "SRAM", "STT-RAM"],
            rows,
        ),
    )
    by_label = {r[0]: r for r in rows}
    assert by_label["Write energy (nJ/access)"][2] / by_label["Read energy (nJ/access)"][2] > 3


def test_table2_config(benchmark, emit):
    def build():
        return (
            table2_rows(SystemConfig.table2()),
            table2_rows(SystemConfig.scaled()),
            table2_rows(SystemConfig.scaled(hybrid=True)),
        )

    full, scaled, hybrid = run_once(benchmark, build)
    from repro.core import lap_overheads

    overhead = lap_overheads(SystemConfig.table2().hierarchy)
    text = "\n\n".join(
        render_table(title, ["parameter", "value"], rows)
        for title, rows in (
            ("Table II: full-scale system (paper)", full),
            ("Table II (scaled): harness default", scaled),
            ("Table II (scaled, hybrid LLC)", hybrid),
            ("LAP hardware overhead at full scale (Section III-D)",
             overhead.summary_rows()),
        )
    )
    emit("table2_config", text)
    assert any("8388608" in str(r[1]) for r in full)
    # "negligible compared to the 64B cache block size": well under 0.5%
    assert overhead.relative_overhead < 0.005


def test_table3_mixes(benchmark, emit):
    rows = run_once(benchmark, table3_rows)
    emit(
        "table3_mixes",
        render_table("Table III: selected SPEC CPU2006 mixes", ["mix", "benchmarks"], rows),
    )
    assert len(rows) == 10


def test_table4_policies(benchmark, emit):
    rows = run_once(benchmark, table4_rows)
    emit(
        "table4_policies",
        render_table("Table IV: evaluated policies", ["policy", "description"], rows),
    )
    assert {"lap", "lhybrid", "dswitch"} <= {r[0] for r in rows}
