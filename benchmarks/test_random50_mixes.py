"""The paper's 50 random SPEC mixes (Section V / Figs. 12-14 context).

The paper randomly chooses 50 four-benchmark combinations, sorts them by
relative exclusive-LLC write traffic, and selects Table III's ten
representatives from them. This benchmark regenerates that population:
it runs all 50 random mixes under non-inclusion and exclusion (plus LAP
on a subsample), reports the Wrel distribution and class split, and
checks that the Table III selection logic holds (both classes well
populated, favour-exclusion tracking Wrel).

Runs at a third of the standard reference count — the population's
*distribution* is the target, not per-mix precision.
"""

from conftest import run_once

from repro.analysis.figures import DEFAULT_BENCH_REFS
from repro.analysis.tables import render_table
from repro.sim import SystemConfig, run_policies
from repro.sim.runner import benchmarks_builder
from repro.workloads import random_mixes


def _measure():
    refs = max(4000, DEFAULT_BENCH_REFS // 3)
    system = SystemConfig.scaled()
    mixes = random_mixes(count=50, seed=2016)
    rows = []
    for i, benchmarks in enumerate(mixes):
        builder = benchmarks_builder(benchmarks, seed=i, name=f"R{i:02d}")
        res = run_policies(system, ("non-inclusive", "exclusive"), builder, refs)
        noni, ex = res["non-inclusive"], res["exclusive"]
        wrel = ex.llc_writes / max(1, noni.llc_writes)
        rows.append(
            {
                "mix": f"R{i:02d}",
                "benchmarks": "+".join(b[:4] for b in benchmarks),
                "Wrel": wrel,
                "Mrel": ex.llc_misses / max(1, noni.llc_misses),
                "ex_epi": ex.epi / noni.epi,
            }
        )
    rows.sort(key=lambda r: r["Wrel"])
    return rows


def test_random50_mixes(benchmark, emit):
    rows = run_once(benchmark, _measure)
    table = render_table(
        "50 random mixes sorted by relative writes (the Table III population)",
        ["mix", "benchmarks", "Wrel", "Mrel", "ex_epi(STT)"],
        [[r["mix"], r["benchmarks"], r["Wrel"], r["Mrel"], r["ex_epi"]] for r in rows],
    )
    wl = [r for r in rows if r["Wrel"] < 1.0]
    wh = [r for r in rows if r["Wrel"] >= 1.0]
    summary = (
        f"\nWL population: {len(wl)} mixes (Wrel {wl[0]['Wrel']:.2f}.."
        f"{wl[-1]['Wrel']:.2f});  WH population: {len(wh)} mixes "
        f"(Wrel up to {wh[-1]['Wrel']:.2f})"
    )
    emit("random50_mixes", table + summary)

    # Both classes are well populated in a random draw (the paper could
    # pick five representatives of each).
    assert len(wl) >= 5 and len(wh) >= 5
    # Energy preference tracks the write ratio across the population:
    # the lowest-Wrel decile must favour exclusion, the highest must not.
    low, high = rows[:5], rows[-5:]
    assert sum(r["ex_epi"] < 1.0 for r in low) >= 4
    assert sum(r["ex_epi"] > 1.0 for r in high) >= 4
