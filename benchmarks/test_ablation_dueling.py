"""Extension ablation: set-dueling cadence and leader density for LAP.

Not a paper figure — DESIGN.md §6 calls this out: how sensitive is LAP
to the dueling interval and to the 1/64 leader-set fraction the paper
fixes? The expectation is robustness: energy within a few percent
across an order of magnitude of cadence.
"""

from conftest import run_once

from repro.analysis.tables import render_mapping_table
from repro.sim import SystemConfig, run_policies
from repro.sim.runner import mix_builder

try:
    from repro.analysis.figures import DEFAULT_BENCH_REFS
except ImportError:  # pragma: no cover
    DEFAULT_BENCH_REFS = 30000

MIXES = ("WL2", "WH1")


def _sweep():
    rows = {}
    refs = max(6000, DEFAULT_BENCH_REFS // 2)
    for interval in (512, 2048, 8192):
        for period in (32, 64):
            label = f"interval={interval},period={period}"
            acc = 0.0
            for mix in MIXES:
                system = SystemConfig.scaled(duel_interval=interval)
                res = run_policies(
                    system, ("non-inclusive",), mix_builder(mix), refs
                )
                base = res["non-inclusive"]
                lap = run_policies(
                    system, ("lap",), mix_builder(mix), refs
                )["lap"]
                acc += lap.epi / base.epi / len(MIXES)
            rows[label] = {"lap_epi_vs_noni": acc}
    return rows


def test_ablation_dueling(benchmark, emit):
    rows = run_once(benchmark, _sweep)
    emit(
        "ablation_dueling",
        render_mapping_table(
            "Ablation: LAP EPI vs dueling interval / leader period "
            "(normalised to non-inclusive, WL2+WH1 average)",
            rows,
            row_label="configuration",
        ),
    )
    values = [c["lap_epi_vs_noni"] for c in rows.values()]
    assert all(v < 1.0 for v in values), "LAP must save energy at every cadence"
    assert max(values) - min(values) < 0.08, "LAP should be cadence-robust"
