"""Fig. 20: multithreaded (PARSEC-like) energy, performance, snoops."""

from conftest import run_once

from repro.analysis.figures import fig20_multithreaded
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig20_multithreaded(benchmark, emit):
    energy, perf, snoop = run_once(benchmark, fig20_multithreaded)
    e_avg = summarize_columns(energy)
    p_avg = summarize_columns(perf)
    s_avg = summarize_columns(snoop)
    text = "\n\n".join(
        (
            render_mapping_table(
                "Fig. 20a: LLC total energy (normalised to non-inclusive)",
                energy,
                "benchmark",
            ),
            render_mapping_table("Fig. 20b: performance (normalised)", perf, "benchmark"),
            render_mapping_table(
                "Fig. 20c: snoop traffic (normalised)", snoop, "benchmark"
            ),
            f"averages: energy {e_avg}",
            f"averages: perf {p_avg}  snoop {s_avg}",
        )
    )
    emit("fig20_multithreaded", text)

    # Paper: LAP saves ~11% vs non-inclusion on average (streamcluster
    # the largest), with write-aware Dswitch beating FLEXclusion.
    assert e_avg["lap"] < 0.97
    assert e_avg["lap"] < e_avg["exclusive"]
    assert e_avg["dswitch"] <= e_avg["flexclusion"] + 0.02
    assert energy["streamcluster"]["lap"] < 1.0
    # performance: LAP roughly matches non-inclusion on average
    assert p_avg["lap"] > 0.93
    # coherence traffic exists and stays within sane bounds
    assert all(0.1 < v < 3.0 for cols in snoop.values() for v in cols.values())
