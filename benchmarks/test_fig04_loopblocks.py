"""Fig. 4: loop-block distribution and clean-trip-count buckets."""

from conftest import run_once

from repro.analysis.figures import fig4_loop_blocks
from repro.analysis.tables import render_mapping_table


def test_fig04_loopblocks(benchmark, emit):
    rows = run_once(benchmark, fig4_loop_blocks)
    emit(
        "fig04_loopblocks",
        render_mapping_table(
            "Fig. 4: loop-block fraction of L2 evictions + CTC bucket shares",
            rows,
            row_label="benchmark",
        ),
    )
    # Paper: omnetpp and xalancbmk exceed 60%, bzip2 exceeds 20%, and
    # the loop-block populations are dominated by CTC >= 5 streaks.
    assert rows["omnetpp"]["loop_fraction"] > 0.5
    assert rows["xalancbmk"]["loop_fraction"] > 0.4
    assert rows["bzip2"]["loop_fraction"] > 0.15
    assert rows["lbm"]["loop_fraction"] < 0.1
    loopy = rows["omnetpp"]
    assert loopy["share[ctc>=5]"] > loopy["share[ctc=1]"]
