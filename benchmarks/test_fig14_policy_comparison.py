"""Fig. 14: policy comparison on STT-RAM — EPI, dynamic EPI, throughput."""

from conftest import run_once

from repro.analysis.charts import render_bars
from repro.analysis.figures import fig14_policy_comparison
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig14_policy_comparison(benchmark, emit):
    epi, dyn, perf = run_once(benchmark, fig14_policy_comparison)
    epi_avg = summarize_columns(epi)
    perf_avg = summarize_columns(perf)
    text = "\n\n".join(
        (
            render_mapping_table(
                "Fig. 14a: LLC overall EPI (normalised to non-inclusive)", epi, "mix"
            ),
            render_mapping_table(
                "Fig. 14b: LLC dynamic EPI (normalised)", dyn, "mix"
            ),
            render_mapping_table(
                "Fig. 14c: throughput (normalised)", perf, "mix"
            ),
            f"averages: EPI {epi_avg}",
            f"averages: throughput {perf_avg}",
            render_bars(
                "average EPI by policy (reference = non-inclusive)",
                epi_avg,
                reference=1.0,
            ),
        )
    )
    emit("fig14_policy_comparison", text)

    # Paper headline: LAP saves ~20% vs noni and ~12% vs ex on average
    # and beats every mix's non-inclusive baseline; throughput is a
    # small win on average with bounded worst case.
    assert epi_avg["lap"] < 0.90
    assert epi_avg["lap"] < epi_avg["exclusive"] - 0.05
    assert epi_avg["lap"] <= epi_avg["dswitch"]
    assert all(cols["lap"] < 1.0 for cols in epi.values())
    assert perf_avg["lap"] >= 0.97
    assert min(cols["lap"] for cols in perf.values()) > 0.9
    # Dswitch (write-aware) should not lose to FLEXclusion on average.
    assert epi_avg["dswitch"] <= epi_avg["flexclusion"] + 0.02
