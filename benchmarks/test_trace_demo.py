"""Flight-recorder demo: record + diff a tiny LAP-vs-non-inclusive pair.

The smoke test behind ``make trace-demo``: records both policies on the
same (workload, seed), checks the recorder's invariants (identical runs
diff to zero; different policies diverge with the paper-shaped deltas),
and emits the diff table as the ``trace_demo`` experiment artefact.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.sim.system import SystemConfig
from repro.telemetry import diff_traces, record_simulation

WORKLOAD = "WL1"
REFS = 2_000
SEED = 7


def assemble_demo() -> dict:
    system = SystemConfig.scaled()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        noni = tmp / "non-inclusive.jsonl.gz"
        lap = tmp / "lap.jsonl.gz"
        noni_again = tmp / "non-inclusive-2.jsonl.gz"
        for path, policy in ((noni, "non-inclusive"), (lap, "lap"),
                             (noni_again, "non-inclusive")):
            record_simulation(path, system, policy, WORKLOAD, REFS, seed=SEED)
        return {
            "self": diff_traces(noni, noni_again).as_dict(),
            "cross": diff_traces(noni, lap).as_dict(),
        }


def test_trace_demo(benchmark, emit):
    from conftest import run_once

    record = run_once(benchmark, assemble_demo)

    # Determinism: two recordings of the same run are indistinguishable.
    assert record["self"]["identical"]
    assert all(d == 0 for d in record["self"]["deltas"].values())

    # The paper's mechanism, visible in the event stream: LAP never
    # data-fills the LLC on a miss, non-inclusion pays one fill each.
    cross = record["cross"]
    assert not cross["identical"]
    assert cross["divergence"]["index"] >= 0
    noni_fills, lap_fills = cross["counts"]["llc_fill"]
    assert noni_fills > 0 and lap_fills == 0
    # Both policies observe the identical reference stream.
    assert cross["deltas"]["access"] == 0

    lines = [f"{'event':18s} {'non-inclusive':>14s} {'lap':>8s} {'delta':>8s}"]
    for name, (left, right) in cross["counts"].items():
        lines.append(f"{name:18s} {left:>14,} {right:>8,} {right - left:>+8,}")
    div = cross["divergence"]
    lines.append(
        f"first divergence at event #{div['index']}: "
        f"{div['left']['type']} vs {div['right']['type']}"
    )
    emit("trace_demo", "\n".join(lines))
