"""Hot-path throughput microbenchmark (instrumented vs. probe-free).

Measures raw simulator accesses/sec on the Fig. 14 policy grid three
ways — with the default probe set (loop tracker + redundant-fill
detector + occupancy sampler), probe-free, and probe-free with the
telemetry layer imported and a live metrics registry installed but
nothing recording — and writes the record to ``BENCH_hotpath.json`` at
the repo root so future PRs can track the hot-path trajectory.

``PRE_REFACTOR_BASELINE`` pins the accesses/sec measured at the growth
seed (commit ad4a4f6, always-on instrumentation, same workload/refs/
geometry) on the machine that landed the probe-bus refactor. The
refactor's acceptance bar — probe-free ≥ 1.5× that baseline — is
asserted loosely here (machines differ); the recorded JSON carries the
exact ratios.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.sim.simulator import Simulator
from repro.sim.system import SystemConfig
from repro.workloads.mixes import make_table3_mix

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_hotpath.json"

POLICIES = ("non-inclusive", "exclusive", "lap")
REFS_PER_CORE = 30_000
REPS = 3

#: accesses/sec at the pre-refactor seed (same grid, default probes).
PRE_REFACTOR_BASELINE = {
    "non-inclusive": 62_712,
    "exclusive": 63_153,
    "lap": 66_642,
}


def _throughput(system: SystemConfig, policy: str) -> float:
    """Best-of-REPS accesses/sec for one (system, policy) cell."""
    ctx = system.scale_context()
    best = 0.0
    for _ in range(REPS):
        workload = make_table3_mix("WL1", ctx, seed=7)
        sim = Simulator(system, policy, workload)
        start = time.perf_counter()
        result = sim.run(REFS_PER_CORE)
        elapsed = time.perf_counter() - start
        best = max(best, result.hier.accesses / elapsed)
    return best


def measure_grid() -> dict:
    system = SystemConfig.scaled()
    record = {
        "workload": "WL1",
        "refs_per_core": REFS_PER_CORE,
        "reps": REPS,
        "pre_refactor_accesses_per_sec": dict(PRE_REFACTOR_BASELINE),
        "instrumented_accesses_per_sec": {},
        "probe_free_accesses_per_sec": {},
        "telemetry_idle_accesses_per_sec": {},
        "probe_free_vs_pre_refactor": {},
        "probe_free_vs_instrumented": {},
        "telemetry_idle_vs_probe_free": {},
    }
    probe_free_system = system.probe_free()
    for policy in POLICIES:
        instrumented = _throughput(system, policy)
        probe_free = _throughput(probe_free_system, policy)
        record["instrumented_accesses_per_sec"][policy] = round(instrumented)
        record["probe_free_accesses_per_sec"][policy] = round(probe_free)
        record["probe_free_vs_pre_refactor"][policy] = round(
            probe_free / PRE_REFACTOR_BASELINE[policy], 3
        )
        record["probe_free_vs_instrumented"][policy] = round(
            probe_free / instrumented, 3
        )

    # Telemetry-idle guard: with repro.telemetry fully imported and a
    # live metrics registry installed — but no TraceProbe attached and
    # nothing recording — the probe-free hot path must be unchanged.
    # Metrics reporting is edge-triggered (once per run in finish()),
    # so this measures that the telemetry layer stays off the per-access
    # path entirely.
    from repro.telemetry import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    try:
        for policy in POLICIES:
            idle = _throughput(probe_free_system, policy)
            record["telemetry_idle_accesses_per_sec"][policy] = round(idle)
            record["telemetry_idle_vs_probe_free"][policy] = round(
                idle / record["probe_free_accesses_per_sec"][policy], 3
            )
    finally:
        set_registry(previous)
    return record


def test_hotpath_throughput(benchmark, emit):
    from conftest import run_once

    record = run_once(benchmark, measure_grid)
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    lines = [f"{'policy':15s} {'instrumented':>14s} {'probe-free':>12s} {'vs-seed':>8s}"]
    for policy in POLICIES:
        lines.append(
            f"{policy:15s} {record['instrumented_accesses_per_sec'][policy]:>14,} "
            f"{record['probe_free_accesses_per_sec'][policy]:>12,} "
            f"{record['probe_free_vs_pre_refactor'][policy]:>7.2f}x"
        )
    emit("hotpath_throughput", "\n".join(lines))

    # Loose in-benchmark gates (the exact 1.5×-vs-seed acceptance is a
    # same-machine comparison; the recorded JSON carries those ratios):
    # disabling probes must never cost throughput, and the grid must be
    # meaningfully faster probe-free.
    for policy in POLICIES:
        assert record["probe_free_vs_instrumented"][policy] > 0.95, policy
    grid_ratio = sum(record["probe_free_vs_pre_refactor"].values()) / len(POLICIES)
    assert grid_ratio > 1.2
    # Telemetry importable-but-disabled must not tax the hot path.
    for policy in POLICIES:
        assert record["telemetry_idle_vs_probe_free"][policy] > 0.9, policy
