"""Hot-path throughput microbenchmark, labelled by tag-store backend.

Measures raw simulator accesses/sec on the kernel-eligible policy trio
four ways — instrumented (default probe set, object layout), probe-free
on the ``object`` backend, probe-free on the ``soa`` backend (numpy
struct-of-arrays + batched kernel, DESIGN.md §13), and probe-free with
the telemetry layer imported but idle — and **appends** one
timestamped, backend-tagged entry to ``BENCH_hotpath.json`` at the repo
root. Earlier entries (including the pre-refactor record, preserved
under ``"legacy"``) are never overwritten, so the file carries the
before/after history across refactors.

The soa leg is the point of the benchmark: when numpy is unavailable
the whole test skips loudly with a reason instead of silently passing
on an object-only grid.

``PRE_REFACTOR_BASELINE`` pins the accesses/sec measured at the growth
seed (commit ad4a4f6, always-on instrumentation, same workload/refs/
geometry). Cross-machine ratios are asserted loosely here; the recorded
JSON carries the exact numbers for same-machine comparison.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import append_entry, measure_throughput, run_hotpath_bench
from repro.kernel import numpy_available
from repro.sim.system import SystemConfig

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_hotpath.json"

POLICIES = ("non-inclusive", "exclusive", "lap")
REFS_PER_CORE = 30_000
REPS = 3

#: accesses/sec at the pre-refactor seed (same grid, default probes).
PRE_REFACTOR_BASELINE = {
    "non-inclusive": 62_712,
    "exclusive": 63_153,
    "lap": 66_642,
}

#: loose in-benchmark floor for the soa-vs-object speedup. The
#: acceptance target (≥ 3×, recorded in BENCH_hotpath.json) is a
#: same-machine best-of comparison; shared CI runners are noisy enough
#: that the automated gate sits lower.
MIN_SOA_SPEEDUP = 1.8


def _throughput(system: SystemConfig, policy: str) -> float:
    return measure_throughput(
        system, policy, refs_per_core=REFS_PER_CORE, reps=REPS, seed=7
    )


def measure_grid() -> dict:
    # Probe-free, both backends: the backend-tagged core of the entry.
    entry = run_hotpath_bench(
        POLICIES,
        ("object", "soa"),
        refs_per_core=REFS_PER_CORE,
        reps=REPS,
        seed=7,
    )
    entry["pre_refactor_accesses_per_sec"] = dict(PRE_REFACTOR_BASELINE)

    # Instrumented leg (default probes; probes force the object layout's
    # generic path, so this tracks the instrumentation overhead).
    system = SystemConfig.scaled()
    entry["instrumented_accesses_per_sec"] = {
        policy: round(_throughput(system, policy)) for policy in POLICIES
    }

    probe_free = {
        policy: entry["accesses_per_sec"][policy]["object"] for policy in POLICIES
    }
    entry["probe_free_vs_instrumented"] = {
        policy: round(
            probe_free[policy] / entry["instrumented_accesses_per_sec"][policy], 3
        )
        for policy in POLICIES
    }
    entry["probe_free_vs_pre_refactor"] = {
        policy: round(probe_free[policy] / PRE_REFACTOR_BASELINE[policy], 3)
        for policy in POLICIES
    }

    # Telemetry-idle guard: with repro.telemetry fully imported and a
    # live metrics registry installed — but no TraceProbe attached and
    # nothing recording — the probe-free object hot path must be
    # unchanged. Metrics reporting is edge-triggered (once per run in
    # finish()), so this measures that the telemetry layer stays off
    # the per-access path entirely.
    from repro.telemetry import MetricsRegistry, set_registry

    probe_free_system = system.probe_free().with_tag_backend("object")
    previous = set_registry(MetricsRegistry())
    try:
        entry["telemetry_idle_accesses_per_sec"] = {
            policy: round(_throughput(probe_free_system, policy))
            for policy in POLICIES
        }
    finally:
        set_registry(previous)
    entry["telemetry_idle_vs_probe_free"] = {
        policy: round(
            entry["telemetry_idle_accesses_per_sec"][policy] / probe_free[policy], 3
        )
        for policy in POLICIES
    }
    return entry


def test_hotpath_throughput(benchmark, emit):
    from conftest import run_once

    if not numpy_available():
        pytest.skip(
            "numpy is not importable: the soa tag-store backend (the "
            "vectorized hot path this benchmark exists to track) cannot "
            "run, and an object-only grid would record a misleadingly "
            "green entry"
        )

    entry = run_once(benchmark, measure_grid)
    append_entry(BENCH_PATH, entry)

    lines = [
        f"{'policy':15s} {'instrumented':>14s} {'object':>10s} {'soa':>10s} "
        f"{'soa/object':>10s}"
    ]
    for policy in POLICIES:
        rates = entry["accesses_per_sec"][policy]
        lines.append(
            f"{policy:15s} {entry['instrumented_accesses_per_sec'][policy]:>14,} "
            f"{rates['object']:>10,} {rates['soa']:>10,} "
            f"{entry['speedup_soa_vs_object'][policy]:>9.2f}x"
        )
    emit("hotpath_throughput", "\n".join(lines))

    # Loose in-benchmark gates (exact acceptance ratios are same-machine
    # comparisons; the appended JSON entry carries them):
    # disabling probes must never cost throughput, the object grid must
    # stay ahead of the pre-refactor seed, and the soa backend must beat
    # the object backend by a wide margin on every policy.
    for policy in POLICIES:
        assert entry["probe_free_vs_instrumented"][policy] > 0.95, policy
    grid_ratio = sum(entry["probe_free_vs_pre_refactor"].values()) / len(POLICIES)
    assert grid_ratio > 1.2
    for policy in POLICIES:
        assert entry["speedup_soa_vs_object"][policy] >= MIN_SOA_SPEEDUP, (
            policy,
            entry["speedup_soa_vs_object"][policy],
        )
    # Telemetry importable-but-disabled must not tax the hot path.
    for policy in POLICIES:
        assert entry["telemetry_idle_vs_probe_free"][policy] > 0.9, policy
