"""Fig. 22: 4-core vs 8-core sensitivity (fixed cache capacities)."""

from conftest import run_once

from repro.analysis.figures import fig22_core_count
from repro.analysis.tables import render_mapping_table


def test_fig22_cores(benchmark, emit):
    rows = run_once(benchmark, fig22_core_count)
    emit(
        "fig22_cores",
        render_mapping_table(
            "Fig. 22: LLC EPI normalised to non-inclusive, 4 vs 8 cores",
            rows,
            row_label="system",
        ),
    )
    # Paper: with more cores contending for the same LLC, exclusion's
    # capacity benefit grows; LAP keeps double-digit savings at 8 cores.
    assert rows["8-core"]["exclusive"] <= rows["4-core"]["exclusive"] + 0.03
    for system, cols in rows.items():
        assert cols["lap"] < 1.0, system
    assert rows["8-core"]["lap"] < 0.95
