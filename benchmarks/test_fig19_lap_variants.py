"""Fig. 19: LAP replacement-policy variants (LAP-LRU / LAP-Loop / LAP)."""

from conftest import run_once

from repro.analysis.figures import fig19_lap_variants
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig19_lap_variants(benchmark, emit):
    rows = run_once(benchmark, fig19_lap_variants)
    avg = summarize_columns(rows)
    emit(
        "fig19_lap_variants",
        render_mapping_table(
            "Fig. 19: LAP variants' overall EPI (normalised to non-inclusive)",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # Paper: neither forced replacement policy wins everywhere; dueling
    # LAP matches the better variant per mix on average.
    assert avg["lap"] <= min(avg["lap-lru"], avg["lap-loop"]) + 0.02
    assert all(cols["lap"] < 1.0 for cols in rows.values())
    # the forced variants should actually differ somewhere, otherwise
    # the ablation is vacuous
    diffs = [abs(c["lap-lru"] - c["lap-loop"]) for c in rows.values()]
    assert max(diffs) > 0.005
