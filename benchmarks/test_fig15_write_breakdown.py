"""Fig. 15: LLC write-class breakdown per policy."""

from conftest import run_once

from repro.analysis.figures import fig15_write_breakdown
from repro.analysis.tables import render_mapping_table


def test_fig15_write_breakdown(benchmark, emit):
    rows = run_once(benchmark, fig15_write_breakdown)
    emit(
        "fig15_write_breakdown",
        render_mapping_table(
            "Fig. 15: LLC writes by class, normalised to non-inclusive totals",
            rows,
            row_label="mix/policy",
        ),
    )
    mixes = sorted({key.split("/")[0] for key in rows})
    lap_totals = [rows[f"{m}/lap"]["total"] for m in mixes]
    noni_totals = [rows[f"{m}/non-inclusive"]["total"] for m in mixes]
    ex_totals = [rows[f"{m}/exclusive"]["total"] for m in mixes]

    # Paper: LAP cuts write traffic ~35% vs noni and ~29% vs ex on
    # average by eliminating fills and duplicate clean insertions.
    avg = lambda xs: sum(xs) / len(xs)
    assert avg(lap_totals) < 0.8 * avg(noni_totals)
    assert avg(lap_totals) < 0.85 * avg(ex_totals)
    for m in mixes:
        assert rows[f"{m}/lap"]["fill"] == 0.0
        assert rows[f"{m}/exclusive"]["fill"] == 0.0
        assert rows[f"{m}/non-inclusive"]["l2_clean"] == 0.0
        # LAP's clean insertions never exceed exclusion's.
        assert rows[f"{m}/lap"]["l2_clean"] <= rows[f"{m}/exclusive"]["l2_clean"] + 1e-9
