"""Fig. 13: workload characteristics scatter (Mrel vs Wrel)."""

from conftest import run_once

from repro.analysis.charts import render_scatter
from repro.analysis.figures import fig13_scatter
from repro.analysis.metrics import borderline_slope
from repro.analysis.tables import render_mapping_table


def test_fig13_scatter(benchmark, emit):
    rows = run_once(benchmark, fig13_scatter)
    points = [
        (c["Mrel"], c["Wrel"], bool(c["favors_exclusion"])) for c in rows.values()
    ]
    try:
        slope = borderline_slope(points)
        slope_note = f"estimated borderline slope: {slope:.2f} (paper: -0.8)"
    except Exception as exc:  # pragma: no cover - degenerate sampling
        slope = None
        slope_note = f"borderline not estimable: {exc}"
    emit(
        "fig13_scatter",
        render_mapping_table(
            "Fig. 13: relative misses vs relative writes of the exclusive LLC",
            rows,
            row_label="mix",
        )
        + "\n"
        + slope_note
        + "\n\n"
        + render_scatter(
            "Fig. 13 cloud ('+' favours exclusion, 'o' favours non-inclusion)",
            [
                (c["Mrel"], c["Wrel"], "+" if c["favors_exclusion"] else "o")
                for c in rows.values()
            ],
            xlabel="Mrel",
            ylabel="Wrel",
        ),
    )
    # Paper shape: higher Wrel pushes mixes away from exclusion; the WL
    # cloud sits below the WH cloud in Wrel.
    favored = [c["favors_exclusion"] for c in rows.values()]
    assert 0 < sum(favored) < len(favored), "both classes must appear"
    # Relative writes separate the classes: every exclusion-favouring
    # mix sits below every non-inclusion-favouring mix in Wrel.
    wrel_fav = [c["Wrel"] for c in rows.values() if c["favors_exclusion"]]
    wrel_not = [c["Wrel"] for c in rows.values() if not c["favors_exclusion"]]
    assert max(wrel_fav) < min(wrel_not)
    # ex_epi rises with Wrel (rank correlation over the cloud).
    pts = sorted((c["Wrel"], c["ex_epi"]) for c in rows.values())
    increases = sum(1 for a, b in zip(pts, pts[1:]) if b[1] >= a[1])
    assert increases >= len(pts) * 0.6
    # The borderline tilts against Wrel far more than against Mrel; at
    # scaled geometry Mrel has less leverage than the paper's -0.8
    # slope, so we only require the boundary to stay well below
    # vertical.
    if slope is not None:
        assert slope < 0.5
