"""Fig. 25: Lhybrid data-placement stage ablation."""

from conftest import run_once

from repro.analysis.figures import fig25_lhybrid_stages
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig25_lhybrid_ablation(benchmark, emit):
    rows = run_once(benchmark, fig25_lhybrid_stages)
    avg = summarize_columns(rows)
    emit(
        "fig25_lhybrid_ablation",
        render_mapping_table(
            "Fig. 25: Lhybrid stages — EPI normalised to non-inclusive "
            "(Winv: write-hit invalidation; LoopSTT: loop-blocks to STT; "
            "NloopSRAM: non-loop-blocks to SRAM)",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # Paper: each stage individually improves (or at least does not
    # hurt) plain LAP slightly; the combined Lhybrid is the best.
    assert avg["lhybrid"] <= min(
        avg["lap"], avg["lap+winv"], avg["lap+loopstt"], avg["lap+nloopsram"]
    ) + 0.01
    assert avg["lap+winv"] <= avg["lap"] + 0.02
    assert avg["lap+nloopsram"] <= avg["lap"] + 0.02
    # NloopSRAM is the dominant stage on write-heavy WL3-style mixes.
    assert rows["WL3"]["lap+nloopsram"] < rows["WL3"]["lap"]
