"""Fig. 2: exclusive vs non-inclusive EPI per benchmark (SRAM & STT)."""

from conftest import run_once

from repro.analysis.figures import fig2_motivation
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig02_motivation(benchmark, emit):
    sram_rows, stt_rows = run_once(benchmark, fig2_motivation)
    text = "\n\n".join(
        (
            render_mapping_table(
                "Fig. 2a: SRAM LLC — exclusive EPI normalised to non-inclusive",
                sram_rows,
                row_label="benchmark",
            ),
            render_mapping_table(
                "Fig. 2b/2c: STT-RAM LLC — exclusive EPI, relative misses/writes",
                stt_rows,
                row_label="benchmark",
            ),
            f"averages: SRAM {summarize_columns(sram_rows)}  "
            f"STT {summarize_columns(stt_rows)}",
        )
    )
    emit("fig02_motivation", text)

    # Paper shape: on STT-RAM, some benchmarks favour exclusion and some
    # non-inclusion (no dominant policy) ...
    stt_epi = [cols["ex_epi"] for cols in stt_rows.values()]
    assert min(stt_epi) < 0.95 and max(stt_epi) > 1.05
    # ... the loop-heavy benchmarks are the ones punishing exclusion ...
    assert stt_rows["omnetpp"]["ex_epi"] > 1.2
    assert stt_rows["libquantum"]["ex_epi"] < 0.85
    # ... and the exclusive policy's EPI tracks its relative writes.
    for cols in stt_rows.values():
        if cols["rel_writes"] > 1.3:
            assert cols["ex_epi"] > 1.0
