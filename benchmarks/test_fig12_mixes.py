"""Fig. 12: noni vs ex on the Table III mixes (SRAM & STT, breakdown)."""

from conftest import run_once

from repro.analysis.figures import fig12_noni_vs_ex
from repro.analysis.metrics import average_over
from repro.analysis.tables import render_mapping_table
from repro.workloads import WH_MIXES, WL_MIXES


def test_fig12_mixes(benchmark, emit):
    sram_rows, stt_rows = run_once(benchmark, fig12_noni_vs_ex)
    wl_avg = average_over(stt_rows, WL_MIXES)
    wh_avg = average_over(stt_rows, WH_MIXES)
    text = "\n\n".join(
        (
            render_mapping_table(
                "Fig. 12a: SRAM LLC — exclusive EPI normalised to non-inclusive",
                sram_rows,
                row_label="mix",
            ),
            render_mapping_table(
                "Fig. 12c/d: STT-RAM LLC — exclusive EPI + static shares",
                stt_rows,
                row_label="mix",
            ),
            f"STT averages: WL {wl_avg}  WH {wh_avg}",
        )
    )
    emit("fig12_mixes", text)

    # Paper: exclusion wins on WL mixes (-18% avg) and loses on WH mixes
    # (+12% avg) for STT-RAM; SRAM never punishes exclusion much.
    assert wl_avg["ex_epi"] < 1.0
    assert wh_avg["ex_epi"] > 1.05
    assert all(cols["ex_epi"] < 1.05 for cols in sram_rows.values())
    # WL mixes have Wrel < 1, WH mixes Wrel > 1 by construction.
    assert wl_avg["rel_writes"] < 1.0 < wh_avg["rel_writes"]
