"""Fig. 24: hybrid SRAM/STT-RAM LLC energy per policy."""

from conftest import run_once

from repro.analysis.figures import fig24_hybrid
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig24_hybrid(benchmark, emit):
    rows = run_once(benchmark, fig24_hybrid)
    avg = summarize_columns(rows)
    emit(
        "fig24_hybrid",
        render_mapping_table(
            "Fig. 24: hybrid-LLC EPI (normalised to non-inclusive)",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # Paper: on the hybrid LLC, LAP saves ~15%/8% vs noni/ex and the
    # Lhybrid placement adds ~7 points more (22%/15% total).
    assert avg["lap"] < 0.95
    assert avg["lhybrid"] < avg["lap"]
    assert avg["lhybrid"] < avg["exclusive"]
    assert avg["lhybrid"] < 0.90
    # Lhybrid wins on most mixes; loop-dominated mixes can regress
    # slightly because non-loop data is confined to the 4 SRAM ways
    # (the paper's "small worst-case loss").
    wins = sum(1 for cols in rows.values() if cols["lhybrid"] <= cols["lap"])
    assert wins >= 7
    assert all(cols["lhybrid"] < 1.15 for cols in rows.values())
