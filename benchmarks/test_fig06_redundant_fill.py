"""Fig. 6: redundant LLC data-fill distribution (non-inclusive LLC)."""

from conftest import run_once

from repro.analysis.figures import fig6_redundant_fill
from repro.analysis.tables import render_mapping_table


def test_fig06_redundant_fill(benchmark, emit):
    rows = run_once(benchmark, fig6_redundant_fill)
    emit(
        "fig06_redundant_fill",
        render_mapping_table(
            "Fig. 6: redundant fills / total LLC data-fills (non-inclusive)",
            rows,
            row_label="benchmark",
        ),
    )
    frac = {b: cols["redundant_fill_fraction"] for b, cols in rows.items()}
    # Paper: libquantum > 80%; astar, GemsFDTD, mcf high; loop-heavy
    # benchmarks low (their fills get reused).
    assert frac["libquantum"] > 0.8
    for bench in ("astar", "GemsFDTD", "mcf"):
        assert frac[bench] > 0.25, bench
    assert frac["omnetpp"] < 0.2
