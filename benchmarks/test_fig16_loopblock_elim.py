"""Fig. 16: energy-harmful loop-block re-insertions per policy."""

from conftest import run_once

from repro.analysis.figures import fig16_loop_occupancy
from repro.analysis.tables import render_mapping_table, summarize_columns
from repro.workloads import WH_MIXES


def test_fig16_loopblock_elimination(benchmark, emit):
    rows = run_once(benchmark, fig16_loop_occupancy)
    avg = summarize_columns(rows)
    emit(
        "fig16_loopblock_elim",
        render_mapping_table(
            "Fig. 16: share of LLC writes that redundantly re-insert "
            "loop-blocks (clean victims with a prior clean trip)",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # Paper reading: WH mixes carry large loop-block populations under
    # exclusion; FLEXclusion/Dswitch eliminate part of them by spending
    # phases in non-inclusive mode, and LAP eliminates almost all of
    # them via its duplicate check.
    assert avg["exclusive"] > 0.1
    assert avg["dswitch"] <= avg["exclusive"]
    assert avg["lap"] < 0.1
    assert avg["lap"] < avg["dswitch"]
    for mix in WH_MIXES:
        assert rows[mix]["lap"] < rows[mix]["exclusive"], mix
    # non-inclusion performs no clean-victim writes at all
    assert all(cols["non-inclusive"] == 0.0 for cols in rows.values())
