"""Figs. 3 & 5: the paper's worked micro-examples of redundant writes.

These regenerate the two four-block walk-throughs exactly: redundant
clean insertions in an exclusive LLC (Fig. 3) and redundant data-fills
in a non-inclusive LLC (Fig. 5), printing the per-policy write counts
the figures narrate.
"""

from conftest import run_once

from repro.analysis.tables import render_table
from repro.testing import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


def _fig3_counts():
    """Second-round LLC writes after the Fig. 3 loop scenario."""
    phase12 = reads(A) + reads(B) + writes(C, D) + reads(E, F, G, H)
    phase345 = reads(A, B, C, D) + writes(B, D) + reads(E, F, G, H)
    out = {}
    for policy in ("non-inclusive", "exclusive", "lap"):
        h = build_micro(policy)
        run_refs(h, phase12)
        before = h.llc.stats.llc_writes
        run_refs(h, phase345)
        out[policy] = h.llc.stats.llc_writes - before
    return out


def _fig5_counts():
    """Fill/update/redundant counts for the Fig. 5 fill scenario."""
    trace = reads(A, B, C) + writes(B, C) + reads(E, F, G, H)
    out = {}
    for policy in ("non-inclusive", "exclusive", "lap"):
        h = build_micro(policy)
        run_refs(h, trace)
        s = h.llc.stats
        out[policy] = {
            "fills": s.fill_writes,
            "updates": s.update_writes,
            "victim_inserts": s.clean_victim_writes + s.dirty_victim_writes,
            "redundant_fills": s.redundant_fills,
            "total_writes": s.llc_writes,
        }
    return out


def test_fig03_redundant_clean_insertion(benchmark, emit):
    counts = run_once(benchmark, _fig3_counts)
    emit(
        "fig03_redundant_clean_insertion",
        render_table(
            "Fig. 3: LLC writes in the second loop round (A/C stay clean)",
            ["policy", "second-round LLC writes"],
            [[p, n] for p, n in counts.items()],
        ),
    )
    # Paper: exclusive needs two additional writes (clean A and C) plus
    # the displaced E..H; non-inclusive writes only dirty B and D; LAP
    # skips the duplicate-clean insertions entirely.
    assert counts["non-inclusive"] == 2
    assert counts["exclusive"] >= counts["non-inclusive"] + 2
    assert counts["lap"] <= counts["exclusive"] - 2


def test_fig05_redundant_data_fill(benchmark, emit):
    counts = run_once(benchmark, _fig5_counts)
    rows = [[p, *vals.values()] for p, vals in counts.items()]
    emit(
        "fig05_redundant_data_fill",
        render_table(
            "Fig. 5: B and C are written before reuse — their fills are redundant",
            ["policy", "fills", "updates", "victim inserts", "redundant fills", "total writes"],
            rows,
        ),
    )
    noni = counts["non-inclusive"]
    assert noni["redundant_fills"] == 2  # exactly B and C
    assert counts["exclusive"]["fills"] == counts["lap"]["fills"] == 0
    assert noni["total_writes"] > counts["exclusive"]["total_writes"]
