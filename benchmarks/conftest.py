"""Benchmark-harness plumbing.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper. Conventions:

- each benchmark runs its figure's data assembly exactly once via
  ``benchmark.pedantic(..., rounds=1)`` — pytest-benchmark then reports
  how long the regeneration takes;
- the regenerated rows/series are printed AND written to
  ``benchmarks/results/<name>.txt`` so a full run leaves a browsable
  record (EXPERIMENTS.md is assembled from these);
- reference counts come from :data:`repro.analysis.figures.
  DEFAULT_BENCH_REFS` (override with the ``REPRO_REFS`` env var).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Writer fixture: ``emit(name, text)`` prints and persists output."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure-assembly function exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
