"""Benchmark-harness plumbing.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper. Conventions:

- each benchmark runs its figure's data assembly exactly once via
  ``benchmark.pedantic(..., rounds=1)`` — pytest-benchmark then reports
  how long the regeneration takes;
- the regenerated rows/series are printed AND written to
  ``benchmarks/results/<name>.txt`` so a full run leaves a browsable
  record (EXPERIMENTS.md is assembled from these);
- reference counts come from :data:`repro.analysis.figures.
  DEFAULT_BENCH_REFS` (override with the ``REPRO_REFS`` env var);
- setting ``REPRO_CACHE_DIR=<dir>`` opts repeated harness invocations
  into the ``repro.exec`` result cache: every spec-described simulation
  is memoised by content address, so re-running the harness (or single
  figures while iterating on analysis code) skips identical runs. The
  tier-1 command (``PYTHONPATH=src python -m pytest -x -q``) collects
  only ``tests/`` (see ``pyproject.toml``) and never sets the variable,
  so tier-1 always stays cache-off.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def repro_result_cache():
    """Opt-in result cache for the whole harness run (``REPRO_CACHE_DIR``)."""
    from repro.exec import cache_from_env, set_active_cache

    cache = cache_from_env()
    if cache is None:
        yield None
        return
    previous = set_active_cache(cache)
    try:
        yield cache
    finally:
        set_active_cache(previous)
        s = cache.stats()
        print(
            f"\n[repro.exec cache] {cache.root}: {s.hits} hit(s), "
            f"{s.misses} miss(es), {s.entries} entr(ies), {s.total_bytes} bytes"
        )


@pytest.fixture
def emit():
    """Writer fixture: ``emit(name, text)`` prints and persists output."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure-assembly function exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
