"""Extension: dead-write bypass composed with LAP (paper Section VII).

The paper states that DASCA-style dead-write bypassing "is orthogonal
to our selective inclusion policies and can be combined with our
approaches to further reduce the dynamic energy consumption". This
benchmark quantifies the combination on streaming-heavy and loop-heavy
mixes.
"""

from conftest import run_once

from repro.analysis.figures import DEFAULT_BENCH_REFS
from repro.analysis.tables import render_mapping_table, summarize_columns
from repro.sim import SystemConfig, run_policies
from repro.sim.runner import mix_builder

POLICIES = ("non-inclusive", "exclusive", "exclusive+dwb", "lap", "lap+dwb")


def _measure():
    refs = max(6000, DEFAULT_BENCH_REFS // 2)
    system = SystemConfig.scaled()
    rows = {}
    for mix in ("WL2", "WL4", "WH1", "WH5"):
        res = run_policies(system, POLICIES, mix_builder(mix), refs)
        base = res["non-inclusive"]
        rows[mix] = {p: res[p].epi / base.epi for p in POLICIES}
        rows[mix]["lap_writes"] = res["lap"].llc_writes / max(1, base.llc_writes)
        rows[mix]["lap+dwb_writes"] = res["lap+dwb"].llc_writes / max(1, base.llc_writes)
    return rows


def test_ext_deadwrite(benchmark, emit):
    rows = run_once(benchmark, _measure)
    avg = summarize_columns(rows)
    emit(
        "ext_deadwrite",
        render_mapping_table(
            "Extension: dead-write bypass — EPI and writes normalised to "
            "non-inclusive",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # The combination must compound: LAP+DWB cuts writes below LAP alone
    # and improves (or at least preserves) LAP's energy on average.
    assert avg["lap+dwb_writes"] <= avg["lap_writes"]
    assert avg["lap+dwb"] <= avg["lap"] + 0.01
    # The bypass also rescues plain exclusion substantially.
    assert avg["exclusive+dwb"] < avg["exclusive"]
