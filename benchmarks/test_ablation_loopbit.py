"""Extension ablation: loop-bit prediction quality.

Not a paper figure — DESIGN.md §6. The paper's single loop-bit predicts
"will travel clean again" from "travelled clean once". This ablation
quantifies the prediction's value by comparing:

- LAP with the loop-bit-driven replacement (``lap-loop``),
- LAP with recency-only replacement (``lap-lru``), and
- the selective-inclusion data flow under both,

on a loop-dominated mix (WH5) and a streaming mix (WL2). The loop-bit
should pay off exactly where loop-blocks exist.
"""

from conftest import run_once

from repro.analysis.figures import DEFAULT_BENCH_REFS
from repro.analysis.tables import render_mapping_table
from repro.sim import SystemConfig, run_policies
from repro.sim.runner import mix_builder


def _measure():
    refs = max(6000, DEFAULT_BENCH_REFS // 2)
    system = SystemConfig.scaled()
    rows = {}
    for mix in ("WH5", "WL2"):
        res = run_policies(
            system, ("non-inclusive", "lap-lru", "lap-loop"), mix_builder(mix), refs
        )
        base = res["non-inclusive"]
        rows[mix] = {
            "lap-lru_epi": res["lap-lru"].epi / base.epi,
            "lap-loop_epi": res["lap-loop"].epi / base.epi,
            "lap-lru_clean_writes": res["lap-lru"].llc.clean_victim_writes,
            "lap-loop_clean_writes": res["lap-loop"].llc.clean_victim_writes,
        }
    return rows


def test_ablation_loopbit(benchmark, emit):
    rows = run_once(benchmark, _measure)
    emit(
        "ablation_loopbit",
        render_mapping_table(
            "Ablation: value of the loop-bit prediction "
            "(loop-aware vs recency-only replacement under LAP's data flow)",
            rows,
            row_label="mix",
        ),
    )
    # On the loop-heavy mix, protecting predicted loop-blocks must cut
    # redundant clean insertions relative to recency-only replacement.
    wh = rows["WH5"]
    assert wh["lap-loop_clean_writes"] < wh["lap-lru_clean_writes"]
    # Both variants still save energy overall on both mixes.
    for mix, cols in rows.items():
        assert cols["lap-lru_epi"] < 1.0 and cols["lap-loop_epi"] < 1.0, mix
