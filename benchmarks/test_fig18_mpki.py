"""Fig. 18: LLC MPKI (effective capacity) per policy."""

from conftest import run_once

from repro.analysis.figures import fig18_mpki
from repro.analysis.tables import render_mapping_table, summarize_columns


def test_fig18_mpki(benchmark, emit):
    rows = run_once(benchmark, fig18_mpki)
    avg = summarize_columns(rows)
    emit(
        "fig18_mpki",
        render_mapping_table(
            "Fig. 18: LLC MPKI normalised to non-inclusive",
            rows,
            row_label="mix",
        )
        + f"\naverages: {avg}",
    )
    # Paper: exclusion cuts MPKI ~23% via effective capacity; LAP tracks
    # exclusion closely (~1% more misses) rather than non-inclusion.
    assert avg["exclusive"] < 1.0
    assert avg["lap"] < 1.0
    assert abs(avg["lap"] - avg["exclusive"]) < 0.12
    for mix, cols in rows.items():
        assert cols["lap"] <= 1.05, mix
